package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DTT003 — template callbacks must not write captured variables.
//
// An Operator built from a template composite literal is an immutable
// description: Operator.New() creates a fresh Instance per executor,
// but every instance shares the template's callback closures. A
// callback that writes a variable captured from the enclosing scope
// therefore mutates state shared across all parallel instances — a
// data race the runtime's model forbids (instances are documented as
// single-goroutine), and a semantic leak even at parallelism 1: the
// captured variable survives across blocks outside the snapshot, so
// marker-cut recovery silently loses it. State belongs in the
// template's state/aggregate machinery (InitialState/UpdateState), or
// per-instance inside a factory.
func (a *analyzer) rule003(c *hotCtx) {
	if c.kind != ctxTemplate || c.lit == nil {
		return
	}
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				a.checkCaptureWrite(c, lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			a.checkCaptureWrite(c, n.X, n.Pos())
		case *ast.CallExpr:
			a.checkCaptureCall(c, n)
		}
		return true
	})
}

// checkCaptureCall flags calls that mutate a captured variable one
// level removed: a method whose summary writes its receiver, invoked
// on a captured variable, or a captured variable passed to a helper
// that writes through that parameter.
func (a *analyzer) checkCaptureCall(c *hotCtx, call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if base := a.capturedVar(c, sel.X); base != nil {
			for _, callee := range a.eng.callees(c.pkg, call) {
				cs := a.eng.sum(callee)
				if cs == nil {
					continue
				}
				eff := derived(call.Pos(), callee, cs.recvWrite)
				if eff == nil {
					continue
				}
				a.reportEff(call.Pos(), CodeCapture, eff,
					"%s calls a method that mutates captured variable %q declared outside the callback (%s): template callbacks are shared by every parallel instance, so this is cross-instance mutable state — keep state in the template's state/aggregate parameters",
					c.desc, base.Name(), eff.chainString())
				return
			}
		}
	}
	for _, callee := range a.eng.callees(c.pkg, call) {
		cs := a.eng.sum(callee)
		if cs == nil || len(cs.writesParam) == 0 {
			continue
		}
		sig := callee.Type().(*types.Signature)
		for j, arg := range call.Args {
			base := a.capturedVar(c, arg)
			if base == nil {
				continue
			}
			cj := calleeParamIndex(sig, j)
			if cj < 0 {
				continue
			}
			eff := derived(call.Pos(), callee, cs.writesParam[cj])
			if eff == nil {
				continue
			}
			a.reportEff(call.Pos(), CodeCapture, eff,
				"%s passes captured variable %q declared outside the callback to a helper that writes through it (%s): template callbacks are shared by every parallel instance, so this is cross-instance mutable state — keep state in the template's state/aggregate parameters",
				c.desc, base.Name(), eff.chainString())
		}
	}
}

// capturedVar resolves e to a variable captured from outside the
// callback literal, or nil.
func (a *analyzer) capturedVar(c *hotCtx, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := c.pkg.Info.ObjectOf(id).(*types.Var)
	if !ok || obj.IsField() || obj.Name() == "_" {
		return nil
	}
	if obj.Pos() >= c.lit.Pos() && obj.Pos() < c.lit.End() {
		return nil // declared inside the callback
	}
	return obj
}

// checkCaptureWrite reports a write whose ultimate target is a
// variable declared outside the callback literal. Three shapes are
// recognized: `x = ...` (rebinding the captured variable), `x[k] =
// ...` (writing a captured map or slice), and `x.f = ...` (writing
// through a captured struct or pointer).
func (a *analyzer) checkCaptureWrite(c *hotCtx, lhs ast.Expr, pos token.Pos) {
	var base *ast.Ident
	var how string
	switch e := lhs.(type) {
	case *ast.Ident:
		base, how = e, "assigns to"
	case *ast.IndexExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			base, how = id, "writes an element of"
		}
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			base, how = id, "writes a field of"
		}
	}
	if base == nil {
		return
	}
	obj, ok := c.pkg.Info.ObjectOf(base).(*types.Var)
	if !ok || obj.IsField() || obj.Name() == "_" {
		return
	}
	if obj.Pos() >= c.lit.Pos() && obj.Pos() < c.lit.End() {
		return // declared inside the callback (parameters included)
	}
	a.reportf(pos, CodeCapture,
		"%s %s captured variable %q declared outside the callback: template callbacks are shared by every parallel instance of the operator, so this is cross-instance mutable state (a data race under Theorem 4.3 replication, and invisible to snapshots) — keep state in the template's state/aggregate parameters",
		c.desc, how, obj.Name())
}
