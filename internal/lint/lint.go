// Package lint implements dttlint, a from-scratch static analyzer
// (stdlib go/parser + go/ast + go/types only, no x/tools) that
// enforces the determinism contract the paper's parallelization
// theorems assume — at the level where it can actually be violated:
// the Go source inside operators and bolts.
//
// The DAG-level checker (core.Check) proves that every edge respects
// its data-trace type; Theorem 4.3 then licenses replicating
// operators behind splitters. Both steps take for granted that the
// code inside an operator is a function of the input trace: no
// ambient nondeterminism (map iteration order, clocks, random
// numbers, scheduler choices), no state shared across parallel
// instances, no side channels around the runtime's delivery
// machinery, and checkpointable state that actually round-trips
// through gob. dttlint checks exactly those obligations:
//
//	DTT001  map-range iteration feeding emission without a sort
//	DTT002  time.Now / math/rand / multi-way select in hot paths
//	DTT003  template callbacks writing captured outer variables
//	DTT004  Snapshotter state that gob cannot encode
//	DTT005  goroutine spawns / raw channel sends in hot paths
//	DTT006  mutable fields written on ParAny (stateless) operators
//	DTT007  ProcessCols/ProcessBatch retaining a column batch alias
//	        past the call (the batch belongs to a recycled arena)
//
// Diagnostics are `file:line:col [DTT00N] message`; a finding can be
// suppressed with `//lint:ignore DTT00N reason` on the same line or
// the line above (DTT000 reports malformed directives).
package lint

import (
	"fmt"
	"go/token"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Diagnostic codes. DTT000 is reserved for malformed suppression
// directives; DTT001–DTT010 are the streaming determinism rules.
const (
	CodeDirective  = "DTT000"
	CodeMapOrder   = "DTT001"
	CodeAmbient    = "DTT002"
	CodeCapture    = "DTT003"
	CodeSnapshot   = "DTT004"
	CodeSideSpawn  = "DTT005"
	CodeStateless  = "DTT006"
	CodeRetainCols = "DTT007"
	CodeNonCommut  = "DTT008"
	CodeBatchLeak  = "DTT009"
	CodeMarkerSeal = "DTT010"
)

// Codes lists every diagnostic code the analyzer can emit, in order.
var Codes = []string{
	CodeDirective, CodeMapOrder, CodeAmbient, CodeCapture,
	CodeSnapshot, CodeSideSpawn, CodeStateless, CodeRetainCols,
	CodeNonCommut, CodeBatchLeak, CodeMarkerSeal,
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// File is the module-root-relative path of the offending file.
	File string `json:"file"`
	// Line and Col are 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Code is the DTT00N rule identifier.
	Code string `json:"code"`
	// Message explains the finding and the paper-level obligation it
	// violates.
	Message string `json:"message"`

	// leafFile/leafLine locate the ultimate leaf site of an
	// interprocedural finding (the time.Now call inside the helper,
	// not the call to the helper). A //lint:ignore directive at the
	// leaf suppresses every finding derived from it, so one reasoned
	// waiver on the offending line covers the whole call chain. Zero
	// for intraprocedural findings.
	leafFile string
	leafLine int
}

// String renders the diagnostic in the canonical
// file:line:col [CODE] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d [%s] %s", d.File, d.Line, d.Col, d.Code, d.Message)
}

// Result is one analyzer run over a set of packages.
type Result struct {
	// Module is the analyzed module's path.
	Module string `json:"module"`
	// Packages lists the analyzed package import paths.
	Packages []string `json:"packages"`
	// Diagnostics are the surviving findings, sorted by position.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// ElapsedMS is the wall-clock analysis time in milliseconds
	// (loading + type-checking + rules).
	ElapsedMS int64 `json:"elapsed_ms"`
	// LoadMS, SummaryMS and RulesMS break ElapsedMS into its phases:
	// parsing + type-checking, the interprocedural summary fixpoint,
	// and the (parallel) per-package rule pass.
	LoadMS    int64 `json:"load_ms"`
	SummaryMS int64 `json:"summary_ms"`
	RulesMS   int64 `json:"rules_ms"`
}

// Options configures a Run.
type Options struct {
	// Dir is the directory patterns are resolved against and the
	// module is discovered from; empty means the working directory.
	Dir string
	// IncludeTests also analyzes in-package _test.go files.
	IncludeTests bool
}

// Run loads, type-checks and analyzes the packages matched by the
// patterns (e.g. "./..."), returning every diagnostic that survives
// suppression. A non-nil error means the analysis could not run
// (unparseable or ill-typed code, bad pattern); diagnostics alone
// never produce an error.
func Run(patterns []string, opts Options) (*Result, error) {
	start := time.Now()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld, err := newLoader(opts.Dir, opts.IncludeTests)
	if err != nil {
		return nil, err
	}
	dirs, err := ld.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := ld.pathFor(dir)
		if err != nil {
			return nil, err
		}
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	hooks, err := resolveHooks(ld)
	if err != nil {
		return nil, err
	}
	loaded := time.Now()

	// Interprocedural summaries over everything the loader pulled in
	// (the analysis set plus its module dependencies), computed once
	// before the rule phase; the rules only read them.
	eng := newEngine(ld)
	eng.build()
	summarized := time.Now()

	// The rule phase is embarrassingly parallel: packages are
	// independent once loaded and summarized, and each worker gets its
	// own child analyzer whose findings are merged (and re-sorted)
	// afterwards, so the output is byte-stable regardless of
	// scheduling.
	children := make([]*analyzer, len(pkgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, p := range pkgs {
		wg.Add(1)
		go func(i int, p *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			child := &analyzer{ld: ld, hooks: hooks, eng: eng}
			child.analyze(p)
			children[i] = child
		}(i, p)
	}
	wg.Wait()
	a := &analyzer{ld: ld, hooks: hooks, eng: eng}
	for _, child := range children {
		a.diags = append(a.diags, child.diags...)
		a.direct = append(a.direct, child.direct...)
	}
	// Leaf-side suppression must see directives in every loaded
	// package, not just the analyzed set: a waived leaf in a
	// dependency package silences the findings it propagates into the
	// analyzed packages.
	a.leafDirect = collectLeafDirectives(ld)

	res := &Result{
		Module:    ld.module,
		LoadMS:    loaded.Sub(start).Milliseconds(),
		SummaryMS: summarized.Sub(loaded).Milliseconds(),
	}
	for _, p := range pkgs {
		res.Packages = append(res.Packages, p.Path)
	}
	res.Diagnostics = a.finish()
	res.RulesMS = time.Since(summarized).Milliseconds()
	res.ElapsedMS = time.Since(start).Milliseconds()
	return res, nil
}

// analyzer accumulates diagnostics and suppression directives across
// the analyzed packages.
type analyzer struct {
	ld     *loader
	hooks  *hooks
	eng    *engine
	diags  []Diagnostic
	direct []directive
	// leafDirect are directives from every loaded package, consulted
	// only for leaf-side suppression of interprocedural findings.
	leafDirect []directive
}

// reportf records a diagnostic at pos.
func (a *analyzer) reportf(pos token.Pos, code, format string, args ...any) {
	p := a.ld.fset.Position(pos)
	a.diags = append(a.diags, Diagnostic{
		File:    a.relFile(p.Filename),
		Line:    p.Line,
		Col:     p.Column,
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	})
}

// reportEff records a diagnostic for an interprocedural effect: the
// rendered message should already include eff's call chain, and the
// effect's leaf position is attached so a //lint:ignore at the leaf
// suppresses the finding.
func (a *analyzer) reportEff(pos token.Pos, code string, eff *effect, format string, args ...any) {
	a.reportf(pos, code, format, args...)
	if eff == nil || eff.depth <= 1 {
		return
	}
	leaf := a.ld.fset.Position(eff.leafPos)
	d := &a.diags[len(a.diags)-1]
	d.leafFile = a.relFile(leaf.Filename)
	d.leafLine = leaf.Line
}

// relFile renders a file name relative to the module root.
func (a *analyzer) relFile(name string) string {
	return relTo(a.ld.root, name)
}

// analyze runs every rule over one package.
func (a *analyzer) analyze(p *Package) {
	a.collectDirectives(p)
	ctxs := a.collectContexts(p)
	for _, c := range ctxs {
		a.rule001(c)
		a.rule002(c)
		a.rule003(c)
		a.rule005(c)
		a.rule008(c)
		a.rule010(c)
	}
	a.rule004(p)
	a.rule006(p)
	a.rule007(p)
}

// finish applies suppression, dedupes and orders the diagnostics.
func (a *analyzer) finish() []Diagnostic {
	kept := applyDirectives(a.diags, a.direct, a.leafDirect)
	sort.Slice(kept, func(i, j int) bool {
		x, y := kept[i], kept[j]
		if x.File != y.File {
			return x.File < y.File
		}
		if x.Line != y.Line {
			return x.Line < y.Line
		}
		if x.Col != y.Col {
			return x.Col < y.Col
		}
		return x.Code < y.Code
	})
	out := kept[:0]
	var last Diagnostic
	for i, d := range kept {
		if i > 0 && d == last {
			continue
		}
		out = append(out, d)
		last = d
	}
	return out
}
