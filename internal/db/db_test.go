package db

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func adsTable(t *testing.T) (*DB, *Table) {
	t.Helper()
	d := New()
	tab, err := d.CreateTable("ads", []Column{
		{Name: "ad_id", Type: Int},
		{Name: "campaign_id", Type: Int},
		{Name: "label", Type: String},
	}, "ad_id")
	if err != nil {
		t.Fatal(err)
	}
	return d, tab
}

func TestInsertGet(t *testing.T) {
	_, tab := adsTable(t)
	if err := tab.Insert(1, 100, "shoes"); err != nil {
		t.Fatal(err)
	}
	row, ok := tab.Get(1)
	if !ok {
		t.Fatal("row not found")
	}
	if row[1] != int64(100) || row[2] != "shoes" {
		t.Fatalf("row = %v", row)
	}
	if _, ok := tab.Get(2); ok {
		t.Fatal("phantom row")
	}
}

func TestIntNormalization(t *testing.T) {
	_, tab := adsTable(t)
	if err := tab.Insert(int64(7), 1, "x"); err != nil {
		t.Fatal(err)
	}
	// Lookup with plain int must find the int64-keyed row.
	if _, ok := tab.Get(7); !ok {
		t.Fatal("int/int64 normalization broken")
	}
}

func TestTypeChecking(t *testing.T) {
	_, tab := adsTable(t)
	err := tab.Insert("not-an-int", 1, "x")
	if err == nil || !strings.Contains(err.Error(), "want INT") {
		t.Fatalf("got %v", err)
	}
	err = tab.Insert(1, 2, 3)
	if err == nil || !strings.Contains(err.Error(), "want STRING") {
		t.Fatalf("got %v", err)
	}
	err = tab.Insert(1, 2)
	if err == nil || !strings.Contains(err.Error(), "got 2 values") {
		t.Fatalf("got %v", err)
	}
}

func TestDuplicatePKAndUpsert(t *testing.T) {
	_, tab := adsTable(t)
	if err := tab.Insert(1, 100, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(1, 200, "b"); err == nil {
		t.Fatal("duplicate insert must fail")
	}
	if err := tab.Upsert(1, 200, "b"); err != nil {
		t.Fatal(err)
	}
	row, _ := tab.Get(1)
	if row[1] != int64(200) {
		t.Fatalf("upsert did not replace: %v", row)
	}
	if tab.Len() != 1 {
		t.Fatalf("len = %d", tab.Len())
	}
}

func TestSecondaryIndex(t *testing.T) {
	_, tab := adsTable(t)
	for i := 0; i < 10; i++ {
		if err := tab.Insert(i, 100+i%2, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.CreateIndex("campaign_id"); err != nil {
		t.Fatal(err)
	}
	rows, err := tab.LookupIndexed("campaign_id", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	// Index must track upserts.
	if err := tab.Upsert(0, 101, "x"); err != nil {
		t.Fatal(err)
	}
	rows, _ = tab.LookupIndexed("campaign_id", 100)
	if len(rows) != 4 {
		t.Fatalf("after upsert: got %d rows, want 4", len(rows))
	}
	rows, _ = tab.LookupIndexed("campaign_id", 101)
	if len(rows) != 6 {
		t.Fatalf("after upsert: got %d rows, want 6", len(rows))
	}
}

func TestLookupUnindexedFails(t *testing.T) {
	_, tab := adsTable(t)
	_, err := tab.LookupIndexed("label", "x")
	if err == nil || !strings.Contains(err.Error(), "not indexed") {
		t.Fatalf("got %v", err)
	}
}

func TestUpdateCol(t *testing.T) {
	_, tab := adsTable(t)
	if err := tab.Insert(1, 100, "a"); err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("campaign_id"); err != nil {
		t.Fatal(err)
	}
	ok, err := tab.UpdateCol(1, "campaign_id", 999)
	if err != nil || !ok {
		t.Fatalf("update: %v %v", ok, err)
	}
	rows, _ := tab.LookupIndexed("campaign_id", 999)
	if len(rows) != 1 {
		t.Fatal("index not maintained by UpdateCol")
	}
	ok, err = tab.UpdateCol(42, "campaign_id", 1)
	if err != nil || ok {
		t.Fatalf("update of missing row: %v %v", ok, err)
	}
}

func TestScanAndJoin(t *testing.T) {
	d := New()
	ads, _ := d.CreateTable("ads", []Column{
		{Name: "ad_id", Type: Int}, {Name: "campaign_id", Type: Int},
	}, "ad_id")
	camps, _ := d.CreateTable("campaigns", []Column{
		{Name: "campaign_id", Type: Int}, {Name: "name", Type: String},
	}, "campaign_id")
	for i := 0; i < 6; i++ {
		if err := ads.Insert(i, i%2); err != nil {
			t.Fatal(err)
		}
	}
	if err := camps.Insert(0, "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := camps.Insert(1, "beta"); err != nil {
		t.Fatal(err)
	}
	rows, err := Join(ads, camps, "campaign_id", "campaign_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("join rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r[1] != r[2] {
			t.Fatalf("join key mismatch in %v", r)
		}
	}
	count := 0
	ads.Scan(func(Row) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("scan early stop broken: %d", count)
	}
}

func TestRowsAreCopies(t *testing.T) {
	_, tab := adsTable(t)
	if err := tab.Insert(1, 100, "a"); err != nil {
		t.Fatal(err)
	}
	row, _ := tab.Get(1)
	row[2] = "mutated"
	row2, _ := tab.Get(1)
	if row2[2] != "a" {
		t.Fatal("Get must return a copy")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	_, tab := adsTable(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = tab.Upsert(w*1000+i, i, "x")
				tab.Get(w*1000 + i)
			}
		}(w)
	}
	wg.Wait()
	if tab.Len() != 800 {
		t.Fatalf("len = %d, want 800", tab.Len())
	}
}

func TestOpDelay(t *testing.T) {
	d, tab := adsTable(t)
	if err := tab.Insert(1, 1, "x"); err != nil {
		t.Fatal(err)
	}
	d.SetOpDelay(2 * time.Millisecond)
	start := time.Now()
	tab.Get(1)
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("op delay not applied: %v", elapsed)
	}
	d.SetOpDelay(0)
	start = time.Now()
	tab.Get(1)
	if elapsed := time.Since(start); elapsed > time.Millisecond {
		t.Fatalf("op delay not cleared: %v", elapsed)
	}
}

func TestSchemaErrors(t *testing.T) {
	d := New()
	if _, err := d.CreateTable("t", []Column{{Name: "a"}, {Name: "a"}}, "a"); err == nil {
		t.Fatal("duplicate column must fail")
	}
	if _, err := d.CreateTable("t", []Column{{Name: "a"}}, "zz"); err == nil {
		t.Fatal("missing pk column must fail")
	}
	if _, err := d.CreateTable("t", []Column{{Name: "a"}}, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("t", []Column{{Name: "a"}}, "a"); err == nil {
		t.Fatal("duplicate table must fail")
	}
	if _, err := d.Table("nope"); err == nil {
		t.Fatal("missing table must fail")
	}
	if got := d.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("tables = %v", got)
	}
}
