// Package db is a small embedded in-memory relational database, the
// stand-in for the Apache Derby instance the paper's evaluation uses
// for enrichment lookups (Query I/III/IV/V/VI) and for persisting
// per-key aggregates (Query II).
//
// It provides typed tables with a primary key, secondary hash
// indexes, point lookups, upserts, scans and hash joins, all safe for
// concurrent use by parallel bolt instances. An optional per-operation
// delay models the latency of the out-of-process database the paper's
// pipelines pay on every lookup, which is what makes the enrichment
// stages compute-heavy and worth parallelizing.
package db

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ColType is a column's declared type.
type ColType int

const (
	// Any accepts every Go value.
	Any ColType = iota
	// Int accepts int64 (and int, converted on insert).
	Int
	// Float accepts float64.
	Float
	// String accepts string.
	String
)

// String renders the type name.
func (c ColType) String() string {
	switch c {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "STRING"
	default:
		return "ANY"
	}
}

// Column declares one table column.
type Column struct {
	Name string
	Type ColType
}

// Row is one table row; values are positional per the table schema.
type Row []any

// Table is a relational table with a primary key and optional
// secondary hash indexes. All methods are safe for concurrent use.
type Table struct {
	name    string
	cols    []Column
	colIdx  map[string]int
	pk      int
	mu      sync.RWMutex
	rows    map[any]Row           // pk value → row
	indexes map[int]map[any][]any // col → value → pk values
	delay   *time.Duration
}

// DB is a collection of named tables.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// delay is added to every table operation to model an external
	// database's per-call latency; zero disables it.
	delay time.Duration
}

// New creates an empty database.
func New() *DB { return &DB{tables: map[string]*Table{}} }

// SetOpDelay makes every subsequent table operation spin for d,
// simulating the round-trip cost of an out-of-process database.
func (db *DB) SetOpDelay(d time.Duration) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.delay = d
	for _, t := range db.tables {
		t.delay = &db.delay
	}
}

// CreateTable declares a table with the given columns; pkCol names
// the primary-key column.
func (db *DB) CreateTable(name string, cols []Column, pkCol string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("db: table %q already exists", name)
	}
	t := &Table{
		name:    name,
		cols:    append([]Column(nil), cols...),
		colIdx:  make(map[string]int, len(cols)),
		pk:      -1,
		rows:    map[any]Row{},
		indexes: map[int]map[any][]any{},
		delay:   &db.delay,
	}
	for i, c := range cols {
		if _, dup := t.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("db: table %q: duplicate column %q", name, c.Name)
		}
		t.colIdx[c.Name] = i
		if c.Name == pkCol {
			t.pk = i
		}
	}
	if t.pk < 0 {
		return nil, fmt.Errorf("db: table %q: primary key column %q not declared", name, pkCol)
	}
	db.tables[name] = t
	return t, nil
}

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("db: no table %q", name)
	}
	return t, nil
}

// MustTable is Table panicking on error, for initialization code.
func (db *DB) MustTable(name string) *Table {
	t, err := db.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// simulate busy-waits for the configured per-op delay. A busy wait
// (rather than time.Sleep) mirrors a synchronous client call: the
// executor is occupied, which is what the throughput model measures.
func (t *Table) simulate() {
	d := *t.delay
	if d <= 0 {
		return
	}
	//lint:ignore DTT002 measurement-only busy-wait: the wall clock only decides how long the simulated client call occupies the executor; no time value reaches operator state or output
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// normalize coerces Go ints to int64 for Int columns and checks
// declared types.
func (t *Table) normalize(col int, v any) (any, error) {
	switch t.cols[col].Type {
	case Int:
		switch x := v.(type) {
		case int:
			return int64(x), nil
		case int64:
			// Return the incoming interface value, not the unboxed x:
			// re-boxing an int64 into a fresh `any` allocates, and this
			// runs once per point lookup on the enrichment hot path.
			return v, nil
		}
		return nil, fmt.Errorf("db: %s.%s: want INT, got %T", t.name, t.cols[col].Name, v)
	case Float:
		if _, ok := v.(float64); ok {
			return v, nil
		}
		return nil, fmt.Errorf("db: %s.%s: want FLOAT, got %T", t.name, t.cols[col].Name, v)
	case String:
		if _, ok := v.(string); ok {
			return v, nil
		}
		return nil, fmt.Errorf("db: %s.%s: want STRING, got %T", t.name, t.cols[col].Name, v)
	default:
		return v, nil
	}
}

// Col returns the index of a column by name.
func (t *Table) Col(name string) (int, error) {
	i, ok := t.colIdx[name]
	if !ok {
		return 0, fmt.Errorf("db: table %q has no column %q", t.name, name)
	}
	return i, nil
}

// CreateIndex builds a secondary hash index on the column.
func (t *Table) CreateIndex(col string) error {
	ci, err := t.Col(col)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := map[any][]any{}
	for pk, row := range t.rows {
		idx[row[ci]] = append(idx[row[ci]], pk)
	}
	t.indexes[ci] = idx
	return nil
}

// Insert adds a row (values positional per schema). It fails on a
// duplicate primary key; use Upsert to overwrite.
func (t *Table) Insert(values ...any) error {
	return t.put(values, false)
}

// Upsert adds or replaces the row with the same primary key.
func (t *Table) Upsert(values ...any) error {
	return t.put(values, true)
}

func (t *Table) put(values []any, replace bool) error {
	if len(values) != len(t.cols) {
		return fmt.Errorf("db: table %q: got %d values, want %d", t.name, len(values), len(t.cols))
	}
	row := make(Row, len(values))
	for i, v := range values {
		nv, err := t.normalize(i, v)
		if err != nil {
			return err
		}
		row[i] = nv
	}
	t.simulate()
	pk := row[t.pk]
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, exists := t.rows[pk]; exists {
		if !replace {
			return fmt.Errorf("db: table %q: duplicate primary key %v", t.name, pk)
		}
		for ci, idx := range t.indexes {
			removePK(idx, old[ci], pk)
		}
	}
	t.rows[pk] = row
	for ci, idx := range t.indexes {
		idx[row[ci]] = append(idx[row[ci]], pk)
	}
	return nil
}

func removePK(idx map[any][]any, val, pk any) {
	pks := idx[val]
	for i, p := range pks {
		if p == pk {
			idx[val] = append(pks[:i], pks[i+1:]...)
			return
		}
	}
}

// Get returns the row with the given primary key. The row is a
// defensive copy; point lookups that only need one column should use
// GetVal, which does not allocate.
func (t *Table) Get(pk any) (Row, bool) {
	t.simulate()
	if nv, err := t.normalize(t.pk, pk); err == nil {
		pk = nv
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[pk]
	if !ok {
		return nil, false
	}
	return append(Row(nil), row...), true
}

// GetVal returns one column of the row with the given primary key,
// without copying the row — the allocation-free point lookup of the
// enrichment hot path (stored values are immutable once inserted, so
// handing out the boxed cell is safe).
func (t *Table) GetVal(pk any, col int) (any, bool) {
	t.simulate()
	if nv, err := t.normalize(t.pk, pk); err == nil {
		pk = nv
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[pk]
	if !ok {
		return nil, false
	}
	return row[col], true
}

// GetIntVal is GetVal for tables with an INT primary key: the typed
// argument avoids boxing the key into an interface on every call,
// which on the per-event enrichment path is one heap allocation per
// lookup.
func (t *Table) GetIntVal(pk int64, col int) (any, bool) {
	t.simulate()
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[pk]
	if !ok {
		return nil, false
	}
	return row[col], true
}

// LookupIndexed returns all rows whose indexed column equals val. The
// column must have an index (CreateIndex).
func (t *Table) LookupIndexed(col string, val any) ([]Row, error) {
	ci, err := t.Col(col)
	if err != nil {
		return nil, err
	}
	if nv, err := t.normalize(ci, val); err == nil {
		val = nv
	}
	t.simulate()
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[ci]
	if !ok {
		return nil, fmt.Errorf("db: table %q: column %q is not indexed", t.name, col)
	}
	pks := idx[val]
	rows := make([]Row, 0, len(pks))
	for _, pk := range pks {
		rows = append(rows, append(Row(nil), t.rows[pk]...))
	}
	return rows, nil
}

// UpdateCol sets one column of the row with the given primary key,
// returning false if the row does not exist.
func (t *Table) UpdateCol(pk any, col string, val any) (bool, error) {
	ci, err := t.Col(col)
	if err != nil {
		return false, err
	}
	nv, err := t.normalize(ci, val)
	if err != nil {
		return false, err
	}
	if p, err := t.normalize(t.pk, pk); err == nil {
		pk = p
	}
	t.simulate()
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.rows[pk]
	if !ok {
		return false, nil
	}
	if idx, indexed := t.indexes[ci]; indexed {
		removePK(idx, row[ci], pk)
		idx[nv] = append(idx[nv], pk)
	}
	row[ci] = nv
	return true, nil
}

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Scan calls fn for every row (in unspecified order) until fn returns
// false. The row passed to fn is a copy.
func (t *Table) Scan(fn func(Row) bool) {
	t.simulate()
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, row := range t.rows {
		if !fn(append(Row(nil), row...)) {
			return
		}
	}
}

// Join hash-joins two tables on leftCol = rightCol and returns the
// concatenated rows (left columns then right columns).
func Join(left, right *Table, leftCol, rightCol string) ([]Row, error) {
	li, err := left.Col(leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := right.Col(rightCol)
	if err != nil {
		return nil, err
	}
	build := map[any][]Row{}
	right.Scan(func(r Row) bool {
		build[r[ri]] = append(build[r[ri]], r)
		return true
	})
	var out []Row
	left.Scan(func(l Row) bool {
		for _, r := range build[l[li]] {
			combined := make(Row, 0, len(l)+len(r))
			combined = append(combined, l...)
			combined = append(combined, r...)
			out = append(out, combined)
		}
		return true
	})
	return out, nil
}
