package metrics

import (
	"testing"
	"time"
)

// Hot-path micro-benchmarks of the observability subsystem; the
// per-event costs quoted in EXPERIMENTS.md come from these.

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i&4095) + 100)
	}
}

func BenchmarkObserveExec(b *testing.B) {
	s := NewStats()
	s.SetObservability(DefaultObsConfig())
	is := s.Instance("x", 0)
	t0 := time.Now()
	for i := 0; i < b.N; i++ {
		is.ObserveExec(t0, 500)
	}
}

func BenchmarkObserveQueuePair(b *testing.B) {
	s := NewStats()
	s.SetObservability(DefaultObsConfig())
	is := s.Instance("x", 0)
	for i := 0; i < b.N; i++ {
		is.ObserveQueueDepth(17)
		is.ObserveQueue(500)
	}
}

func BenchmarkStatsSnapshot(b *testing.B) {
	s := NewStats()
	s.SetObservability(DefaultObsConfig())
	for c := 0; c < 4; c++ {
		for i := 0; i < 4; i++ {
			is := s.Instance(string(rune('a'+c)), i)
			for k := 0; k < 1000; k++ {
				is.ObserveExec(time.Now(), time.Duration(k))
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := s.Snapshot()
		if len(snap.Instances) != 16 {
			b.Fatal("bad snapshot")
		}
	}
}
