package metrics

import (
	"sync"
	"testing"
	"time"
)

// TestSnapshotWhileRecording is the -race soak for the copy-on-read
// contract: writer goroutines hammer every counter and histogram of a
// Stats while reader goroutines poll Snapshot, ByComponent and the
// renderers. Run under -race this proves mid-run reads are safe; the
// final snapshot is additionally checked for exact totals.
func TestSnapshotWhileRecording(t *testing.T) {
	s := NewStats()
	s.SetObservability(ObsConfig{Enabled: true, SampleEvery: 8, SpanRing: 16})

	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: poll everything the monitoring path exposes.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				for _, c := range snap.ByComponent() {
					_ = c.Exec.Quantile(0.99)
					_ = c.MarkerLag.Mean()
				}
				_ = snap.ObsTable()
				_ = snap.SpanTrace()
				_ = s.String()
				_, _, _ = s.Recovery()
			}
		}()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			is := s.Instance("writer", w)
			start := time.Now()
			for i := 0; i < perWriter; i++ {
				is.AddExecuted(1)
				is.AddEmitted(1)
				is.AddBusy(time.Microsecond)
				is.ObserveExec(start, time.Duration(i%1000)*time.Nanosecond)
				is.ObserveQueue(time.Duration(i) * time.Nanosecond)
				is.ObserveQueueDepth(i % 64)
				if i%100 == 0 {
					is.ObserveMarkerLag(time.Duration(i) * time.Microsecond)
					is.AddRestarts(1)
					is.AddReplayed(2)
					is.AddDropped(1)
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Wait for the writers by polling the executed total — itself a
	// mid-run read, which is the point of the test.
	deadline := time.After(30 * time.Second)
	for {
		snap := s.Snapshot()
		var total int64
		for _, is := range snap.Instances {
			total += is.Executed
		}
		if total == writers*perWriter {
			break
		}
		select {
		case <-deadline:
			t.Fatal("writers did not finish")
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	<-done

	snap := s.Snapshot()
	if len(snap.Instances) != writers {
		t.Fatalf("instances = %d", len(snap.Instances))
	}
	for _, is := range snap.Instances {
		if is.Executed != perWriter || is.Emitted != perWriter {
			t.Fatalf("writer %d: executed/emitted = %d/%d", is.Instance, is.Executed, is.Emitted)
		}
		if is.Exec.Count != perWriter {
			t.Fatalf("writer %d: exec histogram count = %d", is.Instance, is.Exec.Count)
		}
		if is.Queue.Count != perWriter {
			t.Fatalf("writer %d: queue histogram count = %d", is.Instance, is.Queue.Count)
		}
		if is.MarkerLag.Count != perWriter/100 {
			t.Fatalf("writer %d: marker-lag count = %d", is.Instance, is.MarkerLag.Count)
		}
		if is.MaxQueueDepth != 63 {
			t.Fatalf("writer %d: max queue depth = %d", is.Instance, is.MaxQueueDepth)
		}
		if is.SpanTotal != perWriter/8 {
			t.Fatalf("writer %d: span total = %d", is.Instance, is.SpanTotal)
		}
		if len(is.Spans) != 16 {
			t.Fatalf("writer %d: retained spans = %d", is.Instance, len(is.Spans))
		}
	}
	comps := snap.ByComponent()
	if len(comps) != 1 || comps[0].Executed != writers*perWriter {
		t.Fatalf("component aggregate wrong: %+v", comps)
	}
	if comps[0].Exec.Count != writers*perWriter {
		t.Fatalf("merged exec count = %d", comps[0].Exec.Count)
	}
}

// TestObservabilityDisabledStructure checks the zero-overhead-when-
// disabled design structurally: a Stats without observability hands
// out records with nil histograms (one pointer test per event) and
// every Observe call is a no-op that records nothing.
func TestObservabilityDisabledStructure(t *testing.T) {
	s := NewStats()
	is := s.Instance("c", 0)
	if is.ObsEnabled() {
		t.Fatal("observability must default to disabled")
	}
	is.ObserveExec(time.Now(), time.Millisecond)
	is.ObserveQueue(time.Millisecond)
	is.ObserveQueueDepth(99)
	is.ObserveMarkerLag(time.Millisecond)
	snap := s.Snapshot()
	if !snap.Instances[0].Exec.Empty() || !snap.Instances[0].Queue.Empty() ||
		!snap.Instances[0].MarkerLag.Empty() {
		t.Fatal("disabled observability must record nothing")
	}
	if snap.Instances[0].MaxQueueDepth != 0 {
		t.Fatal("disabled observability must not track queue depth")
	}
	if spans, total := is.Spans(); len(spans) != 0 || total != 0 {
		t.Fatal("disabled observability must not sample spans")
	}
}

// TestObsConfigDefaults pins the documented defaults.
func TestObsConfigDefaults(t *testing.T) {
	cfg := DefaultObsConfig()
	if !cfg.Enabled {
		t.Fatal("DefaultObsConfig must enable observability")
	}
	if cfg.sampleEvery() != 256 || cfg.spanRing() != 128 {
		t.Fatalf("defaults = %d/%d", cfg.sampleEvery(), cfg.spanRing())
	}
	neg := ObsConfig{Enabled: true, SampleEvery: -1}
	s := NewStats()
	s.SetObservability(neg)
	is := s.Instance("c", 0)
	if !is.ObsEnabled() {
		t.Fatal("histograms must be on even with spans disabled")
	}
	is.ObserveExec(time.Now(), time.Millisecond)
	if spans, _ := is.Spans(); len(spans) != 0 {
		t.Fatal("SampleEvery < 0 must disable spans")
	}
}

// TestFilteredCopiesObservability: Filtered deep-copies histograms so
// the filtered view is isolated from the original.
func TestFilteredCopiesObservability(t *testing.T) {
	s := NewStats()
	s.SetObservability(DefaultObsConfig())
	is := s.Instance("op", 0)
	is.ObserveExec(time.Now(), time.Millisecond)
	is.ObserveQueueDepth(7)

	f := s.Filtered(func(c string) bool { return true })
	fis := f.Instances()[0]
	if fis.ExecHist().Count != 1 || fis.MaxQueueDepth() != 7 {
		t.Fatal("Filtered must copy observability state")
	}
	fis.ObserveExec(time.Now(), time.Millisecond)
	if is.ExecHist().Count != 1 {
		t.Fatal("mutating the filtered copy leaked into the original")
	}
}
