package metrics

import (
	"sync"
	"time"
)

// This file implements the sampled event-trace span facility: every
// executor keeps a small ring buffer of spans — one per SampleEvery
// executed events — so a run can be traced ("what was component X
// doing, and when") without recording every event. Sampling keeps the
// overhead off the hot path: the per-event cost is a plain countdown
// decrement and a branch (the ring, like the rest of an executor's
// write path, is only ever written by its own executor goroutine);
// the ring's mutex is taken only when a span is actually sampled
// (every Nth event), never on the common path.

// Span is one sampled event execution.
type Span struct {
	// Component and Instance identify the executor.
	Component string
	Instance  int
	// Seq is the executor's executed-event ordinal at sampling time.
	Seq int64
	// Start and End are wall-clock nanoseconds (time.Time.UnixNano).
	Start, End int64
}

// Duration is the span's execute latency.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// spanRing is a fixed-capacity ring of sampled spans. A nil *spanRing
// ignores sample calls (observability disabled, or span sampling off).
type spanRing struct {
	component string
	instance  int
	every     int
	// skip is the countdown to the next sampled call. Plain (not
	// atomic): sample is called only from the owning executor
	// goroutine, and snapshots never read it.
	skip int

	mu    sync.Mutex
	buf   []Span
	next  int
	total int64
}

func newSpanRing(component string, instance int, every, capacity int) *spanRing {
	return &spanRing{
		component: component,
		instance:  instance,
		every:     every,
		skip:      1, // sample the first call, then every Nth
		buf:       make([]Span, 0, capacity),
	}
}

// sample records every Nth span (N = the ring's sampling period);
// seq labels the recorded span with the executor's executed-event
// ordinal. nil-safe no-op.
func (r *spanRing) sample(seq int64, start time.Time, d time.Duration) {
	if r == nil {
		return
	}
	r.skip--
	if r.skip > 0 {
		return
	}
	r.skip = r.every
	s := Span{
		Component: r.component,
		Instance:  r.instance,
		Seq:       seq,
		Start:     start.UnixNano(),
		End:       start.Add(d).UnixNano(),
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// snapshot returns the retained spans oldest-first, plus the total
// number sampled over the executor's lifetime (≥ len of the result;
// the ring keeps only the most recent ones).
func (r *spanRing) snapshot() ([]Span, int64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out, r.total
}
