package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestMakespanLPT(t *testing.T) {
	s := NewStats()
	for _, busy := range []time.Duration{4 * time.Second, 3 * time.Second, 2 * time.Second, time.Second} {
		is := s.Instance("c", len(s.Instances()))
		is.SetBusy(busy)
	}
	// LPT on 2 workers: {4,1} and {3,2} → makespan 5s.
	if got := s.Makespan(2); got != 5*time.Second {
		t.Fatalf("makespan(2) = %v, want 5s", got)
	}
	if got := s.Makespan(1); got != 10*time.Second {
		t.Fatalf("makespan(1) = %v", got)
	}
	if got := s.Makespan(100); got != 4*time.Second {
		t.Fatalf("makespan(100) = %v (bounded by largest executor)", got)
	}
	if got := s.Makespan(0); got != 10*time.Second {
		t.Fatalf("makespan(0) must clamp to 1 worker, got %v", got)
	}
}

func TestThroughput(t *testing.T) {
	s := NewStats()
	s.Instance("c", 0).SetBusy(2 * time.Second)
	if got := s.Throughput(1000, 1); got < 499 || got > 501 {
		t.Fatalf("throughput = %v, want ≈500", got)
	}
	empty := NewStats()
	if got := empty.Throughput(1000, 1); got != 0 {
		t.Fatalf("empty stats throughput = %v", got)
	}
}

func TestComponentAggregation(t *testing.T) {
	s := NewStats()
	a := s.Instance("a", 0)
	a.AddExecuted(10)
	a.AddEmitted(5)
	b := s.Instance("a", 1)
	b.AddExecuted(7)
	b.AddEmitted(2)
	s.Instance("b", 0).AddExecuted(100)
	exec, emit := s.Component("a")
	if exec != 17 || emit != 7 {
		t.Fatalf("component a = %d/%d", exec, emit)
	}
}

func TestFiltered(t *testing.T) {
	s := NewStats()
	s.Instance("spout", 0).SetBusy(5 * time.Second)
	s.Instance("op", 0).SetBusy(time.Second)
	f := s.Filtered(func(c string) bool { return c == "op" })
	if f.TotalBusy() != time.Second {
		t.Fatalf("filtered total = %v", f.TotalBusy())
	}
	// Mutating the filtered copy must not touch the original.
	f.Instances()[0].SetBusy(0)
	if s.TotalBusy() != 6*time.Second {
		t.Fatal("Filtered must deep-copy records")
	}
}

func TestNormalizeCapsAtWallTimesProcs(t *testing.T) {
	s := NewStats()
	s.Instance("a", 0).SetBusy(3 * time.Second)
	s.Instance("b", 0).SetBusy(time.Second)
	s.Normalize(time.Second) // limit = 1s × GOMAXPROCS(=1 on CI hosts, ≥1 anywhere)
	total := s.TotalBusy()
	if total > 4*time.Second {
		t.Fatalf("normalize increased totals: %v", total)
	}
	// Proportions preserved.
	insts := s.Instances()
	if insts[0].Busy() < insts[1].Busy()*2 {
		t.Fatalf("normalization broke proportions: %v vs %v", insts[0].Busy(), insts[1].Busy())
	}
}

func TestStringTable(t *testing.T) {
	s := NewStats()
	is := s.Instance("comp", 0)
	is.AddExecuted(3)
	if !strings.Contains(s.String(), "comp") {
		t.Fatal("table missing component")
	}
}
