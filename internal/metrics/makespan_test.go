package metrics

import (
	"math/rand"
	"testing"
	"time"
)

// randomStats builds a Stats with n executors of random busy times.
func randomStats(r *rand.Rand, n int) *Stats {
	s := NewStats()
	for i := 0; i < n; i++ {
		is := s.Instance("comp", i)
		is.SetBusy(time.Duration(r.Int63n(int64(50 * time.Millisecond))))
	}
	return s
}

// TestMakespanProperties checks the scheduling-theoretic facts the
// simulated-cluster model rests on, over random workloads:
//
//   - monotone: more workers never lengthen the schedule;
//   - ≥ the longest single busy time (one job is indivisible);
//   - ≥ total/workers (perfect balance is a lower bound);
//   - one worker serializes everything: makespan = total busy.
func TestMakespanProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := randomStats(r, 1+r.Intn(12))

		var longest, total time.Duration
		for _, is := range s.Instances() {
			total += is.Busy()
			if is.Busy() > longest {
				longest = is.Busy()
			}
		}

		if got := s.Makespan(1); got != total {
			t.Fatalf("trial %d: Makespan(1) = %v, want total %v", trial, got, total)
		}
		prev := s.Makespan(1)
		for w := 2; w <= 8; w++ {
			ms := s.Makespan(w)
			if ms > prev {
				t.Fatalf("trial %d: Makespan(%d)=%v > Makespan(%d)=%v — not monotone",
					trial, w, ms, w-1, prev)
			}
			if ms < longest {
				t.Fatalf("trial %d: Makespan(%d)=%v below the longest busy time %v",
					trial, w, ms, longest)
			}
			if lower := total / time.Duration(w); ms < lower {
				t.Fatalf("trial %d: Makespan(%d)=%v below the balance bound %v",
					trial, w, ms, lower)
			}
			prev = ms
		}

		// Degenerate worker counts clamp to one worker.
		if s.Makespan(0) != total || s.Makespan(-3) != total {
			t.Fatalf("trial %d: non-positive worker counts must behave like 1", trial)
		}
	}
}

// TestNormalizePreservesShares checks that rescaling overflowing busy
// times keeps every executor's relative share (up to rounding) and
// that in-budget measurements are untouched.
func TestNormalizePreservesShares(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		s := randomStats(r, 2+r.Intn(10))
		before := map[int]time.Duration{}
		var total time.Duration
		for _, is := range s.Instances() {
			before[is.Instance] = is.Busy()
			total += is.Busy()
		}

		// A generous wall budget: nothing may change.
		s.Normalize(total + time.Second)
		for _, is := range s.Instances() {
			if is.Busy() != before[is.Instance] {
				t.Fatalf("trial %d: in-budget Normalize changed executor %d", trial, is.Instance)
			}
		}

		// A tiny wall budget: everything scales down, shares preserved.
		wall := total / 100
		if wall == 0 {
			continue
		}
		s.Normalize(wall)
		var after time.Duration
		for _, is := range s.Instances() {
			after += is.Busy()
			if is.Busy() > before[is.Instance] {
				t.Fatalf("trial %d: Normalize increased executor %d", trial, is.Instance)
			}
		}
		for _, is := range s.Instances() {
			// Relative share before vs after, with tolerance for the
			// per-executor truncation to integer nanoseconds.
			if total == 0 || after == 0 {
				continue
			}
			shareBefore := float64(before[is.Instance]) / float64(total)
			shareAfter := float64(is.Busy()) / float64(after)
			if diff := shareBefore - shareAfter; diff > 1e-4 || diff < -1e-4 {
				t.Fatalf("trial %d: Normalize changed executor %d's share: %f vs %f",
					trial, is.Instance, shareBefore, shareAfter)
			}
		}
	}
}
