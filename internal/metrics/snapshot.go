package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file implements the copy-on-read export of Stats: Snapshot
// freezes every executor's counters, histograms and sampled spans
// into plain values that are safe to keep, merge and render while the
// run continues. A monitoring goroutine polls Snapshot; the table the
// -obs flag prints is ObsTable over ByComponent.

// InstanceSnapshot is the frozen view of one executor's stats.
type InstanceSnapshot struct {
	Component string
	Instance  int

	Executed int64
	Emitted  int64
	Busy     time.Duration
	Restarts int64
	Replayed int64
	Dropped  int64
	// Cuts counts committed marker cuts (markers executed); Executed −
	// Cuts is the parallelism-invariant item count.
	Cuts int64

	// MaxQueueDepth is the high-water inbox depth (backpressure gauge).
	MaxQueueDepth int64
	// QueueDepth is the most recently observed inbox depth (the live
	// gauge; MaxQueueDepth is its monotonic high-water).
	QueueDepth int64

	// Exec, Queue and MarkerLag are latency histograms: per-event
	// execute latency, emit-to-receive inbox latency, and marker-cut
	// start → snapshot-flush lag. Empty when observability is off.
	Exec      Hist
	Queue     Hist
	MarkerLag Hist

	// Spans are the retained sampled execute spans (oldest first);
	// SpanTotal is the lifetime number sampled.
	Spans     []Span
	SpanTotal int64
}

// StatsSnapshot is the frozen view of a whole run.
type StatsSnapshot struct {
	// Instances are ordered by component, then instance.
	Instances []InstanceSnapshot
}

// Snapshot freezes the current counters into plain values. It is safe
// to call at any time, including while executors are running: every
// counter read is atomic and histogram copies are monitoring reads
// (samples landing mid-copy may or may not be included).
func (s *Stats) Snapshot() StatsSnapshot {
	insts := s.Instances()
	out := StatsSnapshot{Instances: make([]InstanceSnapshot, 0, len(insts))}
	for _, is := range insts {
		snap := InstanceSnapshot{
			Component:     is.Component,
			Instance:      is.Instance,
			Executed:      is.Executed(),
			Emitted:       is.Emitted(),
			Busy:          is.Busy(),
			Restarts:      is.Restarts(),
			Replayed:      is.Replayed(),
			Dropped:       is.Dropped(),
			Cuts:          is.Cuts(),
			MaxQueueDepth: is.MaxQueueDepth(),
			QueueDepth:    is.QueueDepth(),
			Exec:          is.ExecHist(),
			Queue:         is.QueueHist(),
			MarkerLag:     is.MarkerLagHist(),
		}
		snap.Spans, snap.SpanTotal = is.Spans()
		out.Instances = append(out.Instances, snap)
	}
	return out
}

// ComponentSnapshot aggregates the instance snapshots of one
// component: counters are summed, histograms merged, the queue gauge
// is the max over instances.
type ComponentSnapshot struct {
	Component string
	Instances int

	Executed int64
	Emitted  int64
	Busy     time.Duration
	Restarts int64
	Replayed int64
	Dropped  int64
	Cuts     int64

	MaxQueueDepth int64
	QueueDepth    int64
	Exec          Hist
	Queue         Hist
	MarkerLag     Hist
}

// ByComponent folds the per-instance snapshots into per-component
// aggregates, ordered by component name.
func (s StatsSnapshot) ByComponent() []ComponentSnapshot {
	byName := make(map[string]*ComponentSnapshot)
	for _, is := range s.Instances {
		c := byName[is.Component]
		if c == nil {
			c = &ComponentSnapshot{Component: is.Component}
			byName[is.Component] = c
		}
		c.Instances++
		c.Executed += is.Executed
		c.Emitted += is.Emitted
		c.Busy += is.Busy
		c.Restarts += is.Restarts
		c.Replayed += is.Replayed
		c.Dropped += is.Dropped
		c.Cuts += is.Cuts
		if is.MaxQueueDepth > c.MaxQueueDepth {
			c.MaxQueueDepth = is.MaxQueueDepth
		}
		if is.QueueDepth > c.QueueDepth {
			c.QueueDepth = is.QueueDepth
		}
		c.Exec = c.Exec.Merge(is.Exec)
		c.Queue = c.Queue.Merge(is.Queue)
		c.MarkerLag = c.MarkerLag.Merge(is.MarkerLag)
	}
	out := make([]ComponentSnapshot, 0, len(byName))
	for _, c := range byName {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out
}

// ObsTable renders the per-component observability table printed by
// `dttbench -obs`: p50/p99 execute latency, max queue depth, and
// marker-cut lag per component.
func (s StatsSnapshot) ObsTable() string {
	comps := s.ByComponent()
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %4s %12s %10s %10s %8s %10s %10s\n",
		"component", "inst", "executed", "exec p50", "exec p99", "maxq", "mark p50", "mark p99")
	for _, c := range comps {
		markP50, markP99 := "-", "-"
		if !c.MarkerLag.Empty() {
			markP50 = fmtDur(c.MarkerLag.QuantileDuration(0.50))
			markP99 = fmtDur(c.MarkerLag.QuantileDuration(0.99))
		}
		execP50, execP99 := "-", "-"
		if !c.Exec.Empty() {
			execP50 = fmtDur(c.Exec.QuantileDuration(0.50))
			execP99 = fmtDur(c.Exec.QuantileDuration(0.99))
		}
		fmt.Fprintf(&b, "%-24s %4d %12d %10s %10s %8d %10s %10s\n",
			c.Component, c.Instances, c.Executed, execP50, execP99,
			c.MaxQueueDepth, markP50, markP99)
	}
	return b.String()
}

// SpanTrace renders the sampled spans of all executors in one
// chronological trace, timestamps relative to the earliest span.
func (s StatsSnapshot) SpanTrace() string {
	var all []Span
	for _, is := range s.Instances {
		all = append(all, is.Spans...)
	}
	if len(all) == 0 {
		return "(no spans sampled)\n"
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	base := all[0].Start
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-24s %4s %8s %10s\n", "t+", "component", "inst", "seq", "dur")
	for _, sp := range all {
		fmt.Fprintf(&b, "%-12s %-24s %4d %8d %10s\n",
			fmtDur(time.Duration(sp.Start-base)), sp.Component, sp.Instance,
			sp.Seq, fmtDur(sp.Duration()))
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return d.String()
	case d < time.Millisecond:
		return d.Round(10 * time.Nanosecond).String()
	case d < time.Second:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
