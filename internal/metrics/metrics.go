// Package metrics collects per-executor execution statistics and
// derives the simulated-cluster throughput model shared by every
// runtime backend (the storm-style engine and the micro-batch
// engine): measured busy times are packed onto W workers with the LPT
// rule and throughput at W workers is input tuples over the resulting
// makespan (see DESIGN.md for why this reproduces the paper's scaling
// figures on a single machine).
//
// On top of the counters the package provides the observability
// subsystem: log-bucketed latency histograms (histogram.go), sampled
// event-trace spans (span.go) and queue gauges, all readable mid-run
// through the copy-on-read Stats.Snapshot. Every counter is an
// atomic, so a monitoring goroutine can poll while executors run —
// race-clean by construction, proven by the -race soak tests.
package metrics

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ObsConfig tunes the observability subsystem of one run. The zero
// value disables it entirely: no histograms are allocated, no
// timestamps are taken, and the per-event cost is a nil-pointer test.
type ObsConfig struct {
	// Enabled turns on latency histograms, queue gauges, marker-lag
	// tracking and span sampling for every executor.
	Enabled bool
	// SampleEvery samples one execute span per N executed events per
	// executor (0 selects the default of 256; < 0 disables spans).
	SampleEvery int
	// SpanRing is the per-executor span ring capacity (0 = 128).
	SpanRing int
}

// DefaultObsConfig returns the enabled configuration with default
// sampling parameters.
func DefaultObsConfig() ObsConfig { return ObsConfig{Enabled: true} }

func (c ObsConfig) sampleEvery() int {
	if c.SampleEvery == 0 {
		return 256
	}
	return c.SampleEvery
}

func (c ObsConfig) spanRing() int {
	if c.SpanRing <= 0 {
		return 128
	}
	return c.SpanRing
}

// InstanceStats are the metrics of one executor (component instance).
// Writes go through the Add/Observe methods and are performed by the
// executor that owns the record; reads may come from any goroutine at
// any time (Stats.Snapshot, the accessor methods), so every counter
// is an atomic.
type InstanceStats struct {
	// Component and Instance identify the executor.
	Component string
	Instance  int

	executed atomic.Int64 // events processed (spouts: produced)
	emitted  atomic.Int64 // events sent downstream
	busy     atomic.Int64 // ns doing work, excluding channel blocking
	restarts atomic.Int64 // marker-cut recoveries of this executor
	replayed atomic.Int64 // events re-delivered during recoveries
	dropped  atomic.Int64 // events discarded after degradation

	// cuts counts marker cuts this executor completed (aligned
	// recoverable executors only). Executed counts markers too — once
	// per cut per instance — so Executed − Cuts is the instance's item
	// deliveries, a quantity invariant under the component's
	// parallelism (and therefore comparable across rescaled runs).
	cuts atomic.Int64

	// combinedIn/combinedOut measure the sender-side combining buffers
	// of this executor's combined edges: events absorbed into partial
	// aggregates, and partial aggregates shipped. Their ratio is the
	// combiner's compression (hit rate = 1 − out/in); both stay zero on
	// uncombined edges.
	combinedIn  atomic.Int64
	combinedOut atomic.Int64

	// maxQueue is the high-water inbox depth observed at receives —
	// the backpressure gauge (0 when observability is disabled).
	maxQueue atomic.Int64
	// curQueue is the most recently observed inbox depth — the live
	// backpressure gauge a feedback controller reacts to (the
	// high-water gauge is monotonic and goes blind to sustained
	// backlog once its peak is set).
	curQueue atomic.Int64

	// exec/queue/markerLag are nil when observability is disabled;
	// every Observe method is nil-safe, which keeps the disabled hot
	// path at a single pointer test.
	exec      *Histogram // per-event execute latency
	queue     *Histogram // emit-to-receive inbox latency
	markerLag *Histogram // marker-cut start → snapshot-flush lag
	spans     *spanRing  // sampled execute spans
}

// AddExecuted counts n processed events.
func (is *InstanceStats) AddExecuted(n int64) { is.executed.Add(n) }

// Executed returns the events processed so far (for spouts: produced).
func (is *InstanceStats) Executed() int64 { return is.executed.Load() }

// AddEmitted counts n events sent downstream.
func (is *InstanceStats) AddEmitted(n int64) { is.emitted.Add(n) }

// Emitted returns the events sent downstream so far.
func (is *InstanceStats) Emitted() int64 { return is.emitted.Load() }

// AddBusy accrues work time.
func (is *InstanceStats) AddBusy(d time.Duration) { is.busy.Add(int64(d)) }

// Busy returns the accumulated work time (excluding channel blocking).
func (is *InstanceStats) Busy() time.Duration { return time.Duration(is.busy.Load()) }

// SetBusy overwrites the busy time (Normalize, tests).
func (is *InstanceStats) SetBusy(d time.Duration) { is.busy.Store(int64(d)) }

// AddRestarts counts n recoveries.
func (is *InstanceStats) AddRestarts(n int64) { is.restarts.Add(n) }

// Restarts returns the recoveries performed.
func (is *InstanceStats) Restarts() int64 { return is.restarts.Load() }

// AddReplayed counts n re-delivered events.
func (is *InstanceStats) AddReplayed(n int64) { is.replayed.Add(n) }

// Replayed returns the events re-delivered during recoveries.
func (is *InstanceStats) Replayed() int64 { return is.replayed.Load() }

// AddDropped counts n discarded events.
func (is *InstanceStats) AddDropped(n int64) { is.dropped.Add(n) }

// Dropped returns the events discarded after degradation.
func (is *InstanceStats) Dropped() int64 { return is.dropped.Load() }

// AddCuts counts n completed marker cuts.
func (is *InstanceStats) AddCuts(n int64) { is.cuts.Add(n) }

// Cuts returns the marker cuts this executor completed.
func (is *InstanceStats) Cuts() int64 { return is.cuts.Load() }

// AddCombinedIn counts n events absorbed into sender-side partial
// aggregates.
func (is *InstanceStats) AddCombinedIn(n int64) { is.combinedIn.Add(n) }

// CombinedIn returns the events absorbed into partial aggregates.
func (is *InstanceStats) CombinedIn() int64 { return is.combinedIn.Load() }

// AddCombinedOut counts n partial aggregates shipped downstream.
func (is *InstanceStats) AddCombinedOut(n int64) { is.combinedOut.Add(n) }

// CombinedOut returns the partial aggregates shipped downstream.
func (is *InstanceStats) CombinedOut() int64 { return is.combinedOut.Load() }

// ObsEnabled reports whether this record collects observability data.
// Executors use it to skip the extra time.Now calls of queue-latency
// stamping when observability is off.
func (is *InstanceStats) ObsEnabled() bool { return is.exec != nil }

// ObserveExec records one execute-latency sample and, on the sampling
// grid, an event-trace span. start is when the execution began; d its
// duration. No-op when observability is disabled.
func (is *InstanceStats) ObserveExec(start time.Time, d time.Duration) {
	if is.exec == nil {
		return
	}
	is.exec.RecordDuration(d)
	is.spans.sample(is.executed.Load(), start, d)
}

// ObserveQueue records one emit-to-receive inbox latency sample.
func (is *InstanceStats) ObserveQueue(d time.Duration) { is.queue.RecordDuration(d) }

// ObserveQueueDepth folds one observed inbox depth into the
// high-water backpressure gauge. No-op when observability is off.
func (is *InstanceStats) ObserveQueueDepth(depth int) {
	if is.exec == nil {
		return
	}
	atomicMax(&is.maxQueue, int64(depth))
	is.curQueue.Store(int64(depth))
}

// MaxQueueDepth returns the high-water inbox depth.
func (is *InstanceStats) MaxQueueDepth() int64 { return is.maxQueue.Load() }

// QueueDepth returns the most recently observed inbox depth.
func (is *InstanceStats) QueueDepth() int64 { return is.curQueue.Load() }

// ObserveMarkerLag records one marker-cut lag sample: the time from a
// cut's first marker arrival to its snapshot flush.
func (is *InstanceStats) ObserveMarkerLag(d time.Duration) { is.markerLag.RecordDuration(d) }

// ExecHist returns a snapshot of the execute-latency histogram.
func (is *InstanceStats) ExecHist() Hist { return is.exec.Snapshot() }

// QueueHist returns a snapshot of the inbox-latency histogram.
func (is *InstanceStats) QueueHist() Hist { return is.queue.Snapshot() }

// MarkerLagHist returns a snapshot of the marker-cut-lag histogram.
func (is *InstanceStats) MarkerLagHist() Hist { return is.markerLag.Snapshot() }

// Spans returns the retained sampled spans (oldest first) and the
// lifetime total sampled.
func (is *InstanceStats) Spans() ([]Span, int64) { return is.spans.snapshot() }

// Stats aggregates per-instance metrics for a topology run. Beyond
// raw counters it computes the simulated-cluster schedule used by the
// evaluation: this reproduction runs on a single machine, so
// "throughput at W workers" is derived by packing the measured
// per-executor busy times onto W workers (LPT greedy) and taking the
// makespan — the standard surrogate for multi-machine scaling when
// real machines are unavailable (see DESIGN.md).
type Stats struct {
	mu        sync.Mutex
	instances []*InstanceStats
	obs       ObsConfig
}

// NewStats creates an empty collector.
func NewStats() *Stats { return &Stats{} }

// SetObservability configures the observability subsystem for
// instances registered after the call (runtimes call it once, before
// starting executors).
func (s *Stats) SetObservability(cfg ObsConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = cfg
}

// Observability returns the active configuration.
func (s *Stats) Observability() ObsConfig {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obs
}

// Instance registers and returns the stats record for an executor.
func (s *Stats) Instance(component string, idx int) *InstanceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	is := &InstanceStats{Component: component, Instance: idx}
	if s.obs.Enabled {
		is.exec = NewHistogram()
		is.queue = NewHistogram()
		is.markerLag = NewHistogram()
		if s.obs.sampleEvery() > 0 {
			is.spans = newSpanRing(component, idx, s.obs.sampleEvery(), s.obs.spanRing())
		}
	}
	s.instances = append(s.instances, is)
	return is
}

// normalize rescales the measured busy times when they are physically
// impossible: per-executor busy is measured with wall-clock windows,
// and when the scheduler preempts an executor mid-window the time of
// whoever runs instead is double-counted. Total CPU cannot exceed
// wall × GOMAXPROCS, so when the measured total overflows that limit
// every executor is scaled down proportionally — shares are
// preserved, double counting is removed. Without this, bursty
// executors (block flushes at markers) would look up to 2× more
// expensive than they are on a loaded single-core machine.
// Normalize is exported for runtime backends; see the method body.
func (s *Stats) Normalize(wall time.Duration) {
	limit := wall * time.Duration(runtime.GOMAXPROCS(0))
	if limit <= 0 {
		return
	}
	var total time.Duration
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, is := range s.instances {
		total += is.Busy()
	}
	if total <= limit {
		return
	}
	factor := float64(limit) / float64(total)
	for _, is := range s.instances {
		is.SetBusy(time.Duration(float64(is.Busy()) * factor))
	}
}

// Instances returns all executor records, ordered by component then
// instance.
func (s *Stats) Instances() []*InstanceStats {
	s.mu.Lock()
	out := append([]*InstanceStats(nil), s.instances...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Instance < out[j].Instance
	})
	return out
}

// Component sums the executed/emitted counters of one component.
func (s *Stats) Component(name string) (executed, emitted int64) {
	for _, is := range s.Instances() {
		if is.Component == name {
			executed += is.Executed()
			emitted += is.Emitted()
		}
	}
	return executed, emitted
}

// ComponentItems sums one component's item deliveries: executed events
// minus completed marker cuts. Markers are broadcast and counted once
// per cut per instance, so raw Executed grows with the instance count;
// the items quantity is invariant under the component's parallelism,
// which makes it the right counter to compare across rescaled runs.
func (s *Stats) ComponentItems(name string) int64 {
	var items int64
	for _, is := range s.Instances() {
		if is.Component == name {
			items += is.Executed() - is.Cuts()
		}
	}
	return items
}

// Combined sums the combining-buffer counters over all executors:
// events absorbed into sender-side partial aggregates and partial
// aggregates shipped. A run without combined edges returns (0, 0).
func (s *Stats) Combined() (in, out int64) {
	for _, is := range s.Instances() {
		in += is.CombinedIn()
		out += is.CombinedOut()
	}
	return in, out
}

// Recovery sums the fault-tolerance counters over all executors:
// restarts performed, events replayed from replay buffers, and events
// dropped by degraded executors.
func (s *Stats) Recovery() (restarts, replayed, dropped int64) {
	for _, is := range s.Instances() {
		restarts += is.Restarts()
		replayed += is.Replayed()
		dropped += is.Dropped()
	}
	return restarts, replayed, dropped
}

// TotalBusy is the sum of busy time over all executors — the total
// compute the run consumed, independent of scheduling.
func (s *Stats) TotalBusy() time.Duration {
	var total time.Duration
	for _, is := range s.Instances() {
		total += is.Busy()
	}
	return total
}

// Makespan packs the executors' busy times onto the given number of
// workers using the LPT (longest processing time first) greedy rule
// and returns the resulting schedule length — the simulated wall time
// of the run on a cluster of that many machines.
func (s *Stats) Makespan(workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	insts := s.Instances()
	busy := make([]time.Duration, 0, len(insts))
	for _, is := range insts {
		busy = append(busy, is.Busy())
	}
	sort.Slice(busy, func(i, j int) bool { return busy[i] > busy[j] })
	loads := make([]time.Duration, workers)
	for _, b := range busy {
		// Assign to the least-loaded worker.
		min := 0
		for w := 1; w < workers; w++ {
			if loads[w] < loads[min] {
				min = w
			}
		}
		loads[min] += b
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// Throughput returns simulated tuples/second at the given worker
// count for a run that consumed inputTuples source tuples.
func (s *Stats) Throughput(inputTuples int64, workers int) float64 {
	ms := s.Makespan(workers)
	if ms <= 0 {
		return 0
	}
	return float64(inputTuples) / ms.Seconds()
}

// String renders a per-component summary table. The recovery columns
// (restarts, replayed, dropped) appear only when some executor has a
// nonzero counter, so failure-free runs render as before.
func (s *Stats) String() string {
	restarts, replayed, dropped := s.Recovery()
	recovery := restarts != 0 || replayed != 0 || dropped != 0
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %4s %12s %12s %12s", "component", "inst", "executed", "emitted", "busy")
	if recovery {
		fmt.Fprintf(&b, " %9s %9s %9s", "restarts", "replayed", "dropped")
	}
	b.WriteByte('\n')
	for _, is := range s.Instances() {
		fmt.Fprintf(&b, "%-24s %4d %12d %12d %12s",
			is.Component, is.Instance, is.Executed(), is.Emitted(), is.Busy().Round(time.Microsecond))
		if recovery {
			fmt.Fprintf(&b, " %9d %9d %9d", is.Restarts(), is.Replayed(), is.Dropped())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Filtered returns a new Stats containing only the executors whose
// component satisfies keep — e.g. to compare backends on operator
// work alone, excluding sources a backend does not model. Records are
// deep copies: mutating the filtered view never touches the original.
func (s *Stats) Filtered(keep func(component string) bool) *Stats {
	out := NewStats()
	for _, is := range s.Instances() {
		if !keep(is.Component) {
			continue
		}
		c := &InstanceStats{Component: is.Component, Instance: is.Instance}
		c.executed.Store(is.Executed())
		c.emitted.Store(is.Emitted())
		c.busy.Store(int64(is.Busy()))
		c.restarts.Store(is.Restarts())
		c.replayed.Store(is.Replayed())
		c.dropped.Store(is.Dropped())
		c.cuts.Store(is.Cuts())
		c.combinedIn.Store(is.CombinedIn())
		c.combinedOut.Store(is.CombinedOut())
		c.maxQueue.Store(is.MaxQueueDepth())
		c.curQueue.Store(is.QueueDepth())
		if is.ObsEnabled() {
			c.exec = histogramFrom(is.ExecHist())
			c.queue = histogramFrom(is.QueueHist())
			c.markerLag = histogramFrom(is.MarkerLagHist())
		}
		out.mu.Lock()
		out.instances = append(out.instances, c)
		out.mu.Unlock()
	}
	return out
}
