// Package metrics collects per-executor execution statistics and
// derives the simulated-cluster throughput model shared by every
// runtime backend (the storm-style engine and the micro-batch
// engine): measured busy times are packed onto W workers with the LPT
// rule and throughput at W workers is input tuples over the resulting
// makespan (see DESIGN.md for why this reproduces the paper's scaling
// figures on a single machine).
package metrics

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// InstanceStats are the metrics of one executor (component instance).
type InstanceStats struct {
	// Component and Instance identify the executor.
	Component string
	Instance  int
	// Executed counts events processed (for spouts: events produced).
	Executed int64
	// Emitted counts events sent downstream.
	Emitted int64
	// Busy is the time the executor spent doing work (producing,
	// merging, executing), excluding time blocked on channels.
	Busy time.Duration
	// Restarts counts recoveries of this executor: a crash rolled it
	// back to its last completed marker cut and restarted it.
	Restarts int64
	// Replayed counts events re-delivered to this executor from its
	// replay buffer during recoveries (the at-least-once re-deliveries
	// that marker-cut rollback makes effectively exactly-once).
	Replayed int64
	// Dropped counts events discarded by this executor after it
	// degraded (unrecoverable failure under a drop-and-log policy).
	Dropped int64
}

// Stats aggregates per-instance metrics for a topology run. Beyond
// raw counters it computes the simulated-cluster schedule used by the
// evaluation: this reproduction runs on a single machine, so
// "throughput at W workers" is derived by packing the measured
// per-executor busy times onto W workers (LPT greedy) and taking the
// makespan — the standard surrogate for multi-machine scaling when
// real machines are unavailable (see DESIGN.md).
type Stats struct {
	mu        sync.Mutex
	instances []*InstanceStats
}

// NewStats creates an empty collector.
func NewStats() *Stats { return &Stats{} }

// Instance registers and returns the stats record for an executor.
func (s *Stats) Instance(component string, idx int) *InstanceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	is := &InstanceStats{Component: component, Instance: idx}
	s.instances = append(s.instances, is)
	return is
}

// normalize rescales the measured busy times when they are physically
// impossible: per-executor busy is measured with wall-clock windows,
// and when the scheduler preempts an executor mid-window the time of
// whoever runs instead is double-counted. Total CPU cannot exceed
// wall × GOMAXPROCS, so when the measured total overflows that limit
// every executor is scaled down proportionally — shares are
// preserved, double counting is removed. Without this, bursty
// executors (block flushes at markers) would look up to 2× more
// expensive than they are on a loaded single-core machine.
// Normalize is exported for runtime backends; see the method body.
func (s *Stats) Normalize(wall time.Duration) {
	limit := wall * time.Duration(runtime.GOMAXPROCS(0))
	if limit <= 0 {
		return
	}
	var total time.Duration
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, is := range s.instances {
		total += is.Busy
	}
	if total <= limit {
		return
	}
	factor := float64(limit) / float64(total)
	for _, is := range s.instances {
		is.Busy = time.Duration(float64(is.Busy) * factor)
	}
}

// Instances returns all executor records, ordered by component then
// instance.
func (s *Stats) Instances() []*InstanceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]*InstanceStats(nil), s.instances...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Instance < out[j].Instance
	})
	return out
}

// Component sums the executed/emitted counters of one component.
func (s *Stats) Component(name string) (executed, emitted int64) {
	for _, is := range s.Instances() {
		if is.Component == name {
			executed += is.Executed
			emitted += is.Emitted
		}
	}
	return executed, emitted
}

// Recovery sums the fault-tolerance counters over all executors:
// restarts performed, events replayed from replay buffers, and events
// dropped by degraded executors.
func (s *Stats) Recovery() (restarts, replayed, dropped int64) {
	for _, is := range s.Instances() {
		restarts += is.Restarts
		replayed += is.Replayed
		dropped += is.Dropped
	}
	return restarts, replayed, dropped
}

// TotalBusy is the sum of busy time over all executors — the total
// compute the run consumed, independent of scheduling.
func (s *Stats) TotalBusy() time.Duration {
	var total time.Duration
	for _, is := range s.Instances() {
		total += is.Busy
	}
	return total
}

// Makespan packs the executors' busy times onto the given number of
// workers using the LPT (longest processing time first) greedy rule
// and returns the resulting schedule length — the simulated wall time
// of the run on a cluster of that many machines.
func (s *Stats) Makespan(workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	busy := make([]time.Duration, 0, len(s.instances))
	for _, is := range s.Instances() {
		busy = append(busy, is.Busy)
	}
	sort.Slice(busy, func(i, j int) bool { return busy[i] > busy[j] })
	loads := make([]time.Duration, workers)
	for _, b := range busy {
		// Assign to the least-loaded worker.
		min := 0
		for w := 1; w < workers; w++ {
			if loads[w] < loads[min] {
				min = w
			}
		}
		loads[min] += b
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// Throughput returns simulated tuples/second at the given worker
// count for a run that consumed inputTuples source tuples.
func (s *Stats) Throughput(inputTuples int64, workers int) float64 {
	ms := s.Makespan(workers)
	if ms <= 0 {
		return 0
	}
	return float64(inputTuples) / ms.Seconds()
}

// String renders a per-component summary table. The recovery columns
// (restarts, replayed, dropped) appear only when some executor has a
// nonzero counter, so failure-free runs render as before.
func (s *Stats) String() string {
	restarts, replayed, dropped := s.Recovery()
	recovery := restarts != 0 || replayed != 0 || dropped != 0
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %4s %12s %12s %12s", "component", "inst", "executed", "emitted", "busy")
	if recovery {
		fmt.Fprintf(&b, " %9s %9s %9s", "restarts", "replayed", "dropped")
	}
	b.WriteByte('\n')
	for _, is := range s.Instances() {
		fmt.Fprintf(&b, "%-24s %4d %12d %12d %12s",
			is.Component, is.Instance, is.Executed, is.Emitted, is.Busy.Round(time.Microsecond))
		if recovery {
			fmt.Fprintf(&b, " %9d %9d %9d", is.Restarts, is.Replayed, is.Dropped)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Filtered returns a new Stats containing only the executors whose
// component satisfies keep — e.g. to compare backends on operator
// work alone, excluding sources a backend does not model.
func (s *Stats) Filtered(keep func(component string) bool) *Stats {
	out := NewStats()
	for _, is := range s.Instances() {
		if !keep(is.Component) {
			continue
		}
		c := *is
		out.mu.Lock()
		out.instances = append(out.instances, &c)
		out.mu.Unlock()
	}
	return out
}
