package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// This file implements the latency histogram of the observability
// subsystem: a log-bucketed (power-of-two) histogram whose hot path is
// a handful of atomic adds — no locks, no allocation — so every bolt
// executor can record a nanosecond sample per event without perturbing
// the run it is measuring. Reading happens through Snapshot, which
// produces a plain mergeable value (Hist) safe to aggregate across
// instances, components and runtimes.

// histBuckets is the number of power-of-two buckets. Bucket 0 holds
// non-positive samples; bucket i (i ≥ 1) holds samples in
// [2^(i-1), 2^i - 1] nanoseconds. 63 octaves cover the full int64
// nanosecond range (≈292 years), so no sample is ever clipped.
const histBuckets = 64

// bucketOf maps a nanosecond sample to its bucket index.
func bucketOf(ns int64) int {
	if ns < 1 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// BucketBounds returns the inclusive sample range of bucket i.
func BucketBounds(i int) (lo, hi int64) {
	switch {
	case i <= 0:
		return math.MinInt64, 0
	case i >= histBuckets-1:
		return int64(1) << (histBuckets - 2), math.MaxInt64
	default:
		return int64(1) << (i - 1), (int64(1) << i) - 1
	}
}

// Histogram is the live, writer-side histogram. Record is safe to
// call concurrently with Snapshot (and with other writers); all hot
// fields are atomics. The zero value is NOT ready — use NewHistogram,
// which seeds the min/max trackers. A nil *Histogram ignores Record
// calls, which is how disabled observability stays free: executors
// hold nil histograms and the per-event cost is one pointer test.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Record adds one nanosecond sample. nil-safe no-op.
func (h *Histogram) Record(ns int64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(ns)].Add(1)
	atomicMin(&h.min, ns)
	atomicMax(&h.max, ns)
}

// RecordDuration adds one duration sample. nil-safe no-op.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

func atomicMin(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v >= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		old := a.Load()
		if v <= old || a.CompareAndSwap(old, v) {
			return
		}
	}
}

// Snapshot copies the histogram into a plain mergeable value. It is
// safe to call while writers are recording; the copy is a monitoring
// read, not a consistent cut (a sample that lands mid-copy may or may
// not be included), which is exactly the "safe to read mid-run"
// contract of Stats.Snapshot. nil-safe: returns an empty Hist.
func (h *Histogram) Snapshot() Hist {
	var s Hist
	if h == nil {
		return s
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += int64(c)
		s.Sum += int64(c) * bucketMid(i)
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	return s
}

// bucketMid is the midpoint estimate used for Hist.Sum: a pure
// function of the bucket index, so Sum is linear in the counts and
// Merge agrees exactly with recording into one histogram. Bucket 0
// (non-positive samples) estimates 0.
func bucketMid(i int) int64 {
	if i == 0 {
		return 0
	}
	lo, hi := BucketBounds(i)
	return lo + (hi-lo)/2
}

// histogramFrom rebuilds a live histogram from a snapshot (used by
// Stats.Filtered to deep-copy records).
func histogramFrom(s Hist) *Histogram {
	h := NewHistogram()
	for i, c := range s.Counts {
		h.counts[i].Store(c)
	}
	if s.Count > 0 {
		h.min.Store(s.Min)
		h.max.Store(s.Max)
	}
	return h
}

// Hist is an immutable histogram snapshot: a plain value that can be
// merged, compared and serialized. The zero value is the empty
// histogram; Min/Max are meaningful only when Count > 0.
//
// Merge forms a commutative monoid with the empty Hist as identity
// (commutative, associative, count-preserving — the package property
// tests check all three), so per-instance histograms aggregate to
// per-component and per-topology views in any order.
type Hist struct {
	// Counts holds per-bucket sample counts (see BucketBounds).
	Counts [histBuckets]uint64
	// Count is the total number of samples.
	Count int64
	// Sum is the bucket-midpoint estimate of the sample sum (for
	// Mean); like Quantile it carries ≤2× relative error on positive
	// samples. It is linear in Counts, so merged Sums agree exactly
	// with combined recording.
	Sum int64
	// Min and Max are the exact extreme samples.
	Min, Max int64
}

// Empty reports whether the histogram holds no samples.
func (s Hist) Empty() bool { return s.Count == 0 }

// Merge combines two snapshots.
func (s Hist) Merge(o Hist) Hist {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	out := s
	for i := range out.Counts {
		out.Counts[i] += o.Counts[i]
	}
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	return out
}

// Quantile returns an upper bound for the q-quantile sample: the
// upper bucket bound of the bucket where the cumulative count crosses
// q·Count, clamped to the exact [Min, Max] range. q ≤ 0 returns the
// exact minimum, q ≥ 1 the exact maximum; an empty histogram returns
// 0. The log bucketing bounds the relative error by 2×.
func (s Hist) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range s.Counts {
		cum += int64(s.Counts[i])
		if cum >= rank {
			_, hi := BucketBounds(i)
			if hi > s.Max {
				hi = s.Max
			}
			if hi < s.Min {
				hi = s.Min
			}
			return hi
		}
	}
	return s.Max
}

// QuantileDuration is Quantile as a time.Duration.
func (s Hist) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// Mean returns the bucket-midpoint estimate of the mean sample
// (0 when empty; ≤2× relative error on positive samples).
func (s Hist) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// String renders a compact summary.
func (s Hist) String() string {
	if s.Count == 0 {
		return "hist{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hist{n=%d mean=%s p50=%s p99=%s min=%s max=%s}",
		s.Count, time.Duration(s.Mean()),
		s.QuantileDuration(0.50), s.QuantileDuration(0.99),
		time.Duration(s.Min), time.Duration(s.Max))
	return b.String()
}
