package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomHist builds a Hist from n random samples drawn over a wide
// log range, returning the snapshot and the raw samples.
func randomHist(r *rand.Rand, n int) (Hist, []int64) {
	h := NewHistogram()
	samples := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		// Log-uniform over ~9 decades, occasionally zero or negative.
		var v int64
		switch r.Intn(10) {
		case 0:
			v = 0
		case 1:
			v = -r.Int63n(1000)
		default:
			v = int64(1) << uint(r.Intn(40))
			v += r.Int63n(v)
		}
		h.Record(v)
		samples = append(samples, v)
	}
	return h.Snapshot(), samples
}

// TestHistogramBucketContainsSample: every recorded value maps to a
// bucket whose bounds contain it.
func TestHistogramBucketContainsSample(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		v := r.Int63n(1 << 50)
		if trial%7 == 0 {
			v = -v
		}
		i := bucketOf(v)
		lo, hi := BucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("sample %d landed in bucket %d with bounds [%d, %d]", v, i, lo, hi)
		}
	}
	// Boundary values.
	for _, v := range []int64{math.MinInt64, -1, 0, 1, 2, 3, 4, 1023, 1024, math.MaxInt64} {
		i := bucketOf(v)
		lo, hi := BucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("boundary sample %d in bucket %d with bounds [%d, %d]", v, i, lo, hi)
		}
	}
}

// TestQuantileExtremes: q ≤ 0 returns the exact minimum, q ≥ 1 the
// exact maximum, and interior quantiles stay within [min, max].
func TestQuantileExtremes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		s, samples := randomHist(r, 1+r.Intn(100))
		min, max := samples[0], samples[0]
		for _, v := range samples {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if got := s.Quantile(0); got != min {
			t.Fatalf("trial %d: Quantile(0) = %d, want min %d", trial, got, min)
		}
		if got := s.Quantile(-0.5); got != min {
			t.Fatalf("trial %d: Quantile(-0.5) = %d, want min %d", trial, got, min)
		}
		if got := s.Quantile(1); got != max {
			t.Fatalf("trial %d: Quantile(1) = %d, want max %d", trial, got, max)
		}
		if got := s.Quantile(2); got != max {
			t.Fatalf("trial %d: Quantile(2) = %d, want max %d", trial, got, max)
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			got := s.Quantile(q)
			if got < min || got > max {
				t.Fatalf("trial %d: Quantile(%v) = %d outside [%d, %d]", trial, q, got, min, max)
			}
		}
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 || empty.Quantile(0) != 0 || empty.Quantile(1) != 0 {
		t.Fatal("empty histogram quantiles must be 0")
	}
}

// TestQuantileUpperBound: the interior quantile is an upper bound for
// the true quantile sample (the bucket's upper bound can only
// overshoot), and within 2× of it (the log-bucket relative error).
func TestQuantileUpperBound(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		s, samples := randomHist(r, 1+r.Intn(200))
		sorted := append([]int64(nil), samples...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
			rank := int(math.Ceil(q * float64(len(sorted))))
			if rank < 1 {
				rank = 1
			}
			exact := sorted[rank-1]
			got := s.Quantile(q)
			if got < exact {
				t.Fatalf("trial %d: Quantile(%v) = %d below the exact sample %d", trial, q, got, exact)
			}
			if exact > 0 && got > 2*exact {
				t.Fatalf("trial %d: Quantile(%v) = %d more than 2x the exact sample %d", trial, q, got, exact)
			}
		}
	}
}

func histEqual(a, b Hist) bool {
	if a.Counts != b.Counts || a.Count != b.Count || a.Sum != b.Sum {
		return false
	}
	if a.Count == 0 {
		return true
	}
	return a.Min == b.Min && a.Max == b.Max
}

// TestMergeProperties: Merge is commutative, associative and
// count/sum-preserving, with the empty Hist as identity.
func TestMergeProperties(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	var empty Hist
	for trial := 0; trial < 200; trial++ {
		a, _ := randomHist(r, r.Intn(50))
		b, _ := randomHist(r, r.Intn(50))
		c, _ := randomHist(r, r.Intn(50))

		if !histEqual(a.Merge(b), b.Merge(a)) {
			t.Fatalf("trial %d: merge not commutative", trial)
		}
		if !histEqual(a.Merge(b).Merge(c), a.Merge(b.Merge(c))) {
			t.Fatalf("trial %d: merge not associative", trial)
		}
		if !histEqual(a.Merge(empty), a) || !histEqual(empty.Merge(a), a) {
			t.Fatalf("trial %d: empty is not the identity", trial)
		}
		m := a.Merge(b)
		if m.Count != a.Count+b.Count {
			t.Fatalf("trial %d: merge lost samples: %d + %d = %d", trial, a.Count, b.Count, m.Count)
		}
		if m.Sum != a.Sum+b.Sum {
			t.Fatalf("trial %d: merge lost sum", trial)
		}
		for i := range m.Counts {
			if m.Counts[i] != a.Counts[i]+b.Counts[i] {
				t.Fatalf("trial %d: bucket %d not additive", trial, i)
			}
		}
	}
}

// TestMergeMatchesCombinedRecording: merging two snapshots equals
// recording both sample sets into one histogram.
func TestMergeMatchesCombinedRecording(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		a, as := randomHist(r, 1+r.Intn(50))
		b, bs := randomHist(r, 1+r.Intn(50))
		combined := NewHistogram()
		for _, v := range as {
			combined.Record(v)
		}
		for _, v := range bs {
			combined.Record(v)
		}
		if !histEqual(a.Merge(b), combined.Snapshot()) {
			t.Fatalf("trial %d: merge differs from combined recording", trial)
		}
	}
}

func TestHistogramNilSafety(t *testing.T) {
	var h *Histogram
	h.Record(5) // must not panic
	h.RecordDuration(time.Second)
	if !h.Snapshot().Empty() {
		t.Fatal("nil histogram snapshot must be empty")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	if got := h.Snapshot().String(); got != "hist{empty}" {
		t.Fatalf("empty string = %q", got)
	}
	h.RecordDuration(time.Millisecond)
	h.RecordDuration(2 * time.Millisecond)
	s := h.Snapshot()
	// Mean is a bucket-midpoint estimate: within 2x of the true 1.5ms.
	trueMean := int64(1500 * time.Microsecond)
	if s.Count != 2 || s.Mean() < trueMean/2 || s.Mean() > 2*trueMean {
		t.Fatalf("unexpected snapshot: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("non-empty histogram must render")
	}
}

// FuzzHistogramRecord checks the record/snapshot invariants on
// arbitrary sample pairs: counts and min/max are exact, Sum is a
// bounded midpoint estimate, every sample's bucket contains it, and
// quantile extremes return min/max.
func FuzzHistogramRecord(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(1), int64(-1))
	f.Add(int64(math.MaxInt64), int64(math.MinInt64))
	f.Add(int64(1023), int64(1024))
	f.Add(int64(time.Second), int64(time.Microsecond))
	f.Fuzz(func(t *testing.T, a, b int64) {
		h := NewHistogram()
		h.Record(a)
		h.Record(b)
		s := h.Snapshot()
		if s.Count != 2 {
			t.Fatalf("count = %d", s.Count)
		}
		// Sum is the bucket-midpoint estimate: for positive samples small
		// enough not to overflow the doubling, it is within 2x of the
		// true sum in either direction.
		if a > 0 && b > 0 && a < 1<<60 && b < 1<<60 {
			if s.Sum < (a+b)/2 || s.Sum > 2*(a+b) {
				t.Fatalf("sum estimate %d outside [%d, %d]", s.Sum, (a+b)/2, 2*(a+b))
			}
		}
		min, max := a, b
		if b < a {
			min, max = b, a
		}
		if s.Min != min || s.Max != max {
			t.Fatalf("min/max = %d/%d, want %d/%d", s.Min, s.Max, min, max)
		}
		if s.Quantile(0) != min || s.Quantile(1) != max {
			t.Fatalf("quantile extremes broken")
		}
		for _, v := range []int64{a, b} {
			lo, hi := BucketBounds(bucketOf(v))
			if v < lo || v > hi {
				t.Fatalf("sample %d outside its bucket [%d, %d]", v, lo, hi)
			}
		}
		// Merging with itself doubles counts.
		m := s.Merge(s)
		if m.Count != 4 || m.Sum != 2*s.Sum {
			t.Fatalf("self-merge: %+v", m)
		}
	})
}
