package workload

import (
	"math/rand"

	"datatrace/internal/stream"
)

// YahooColSource is the columnar form of one Yahoo partition source:
// the same deterministic event/marker state machine as Partitions, but
// able to hand items over as typed column rows (NextCols) instead of
// boxed events. Its method set matches storm.ColSpout structurally, so
// the queries layer can use it as a spout directly; markers and
// end-of-stream always come through Next, per the ColSpout contract.
//
// Equivalence with the boxed Partitions iterators holds by
// construction: both step an identical state machine over an identical
// RNG stream (every partition generates all events and keeps its
// round-robin share), so the delivered item/marker sequence is the
// same however NextCols and Next calls interleave.
type YahooColSource struct {
	y *Yahoo
	r *rand.Rand
	// p of n is this partition's round-robin share.
	p, n int
	// keyed selects U(UID, YItem) rows (Query II's source type) instead
	// of unit-keyed rows.
	keyed    bool
	second   int
	inSecond int
}

// ColPartitions is Partitions in columnar form: n sub-sources sharing
// the marker sequence, each usable as a storm.ColSpout. keyed selects
// user-keyed rows (the KeyByUser rewrite, typed).
func (y *Yahoo) ColPartitions(n int, keyed bool) []*YahooColSource {
	if n < 1 {
		n = 1
	}
	parts := make([]*YahooColSource, n)
	for p := 0; p < n; p++ {
		parts[p] = &YahooColSource{
			y: y, r: rand.New(rand.NewSource(y.cfg.Seed)),
			p: p, n: n, keyed: keyed,
		}
	}
	return parts
}

// ColKind reports the kind of batches NextCols fills.
func (s *YahooColSource) ColKind() *stream.ColKind {
	if s.keyed {
		return stream.ColKindFor[int64, YahooEvent]()
	}
	return stream.ColKindFor[stream.Unit, YahooEvent]()
}

// Next returns the next event boxed — items, the per-second markers,
// and end-of-stream — exactly as the Partitions iterators do.
func (s *YahooColSource) Next() (stream.Event, bool) {
	for {
		if s.second >= s.y.cfg.Seconds {
			return stream.Event{}, false
		}
		if s.inSecond == s.y.cfg.EventsPerSecond {
			m := stream.Mark(stream.Marker{Seq: int64(s.second), Timestamp: int64(s.second+1) * 1000})
			s.second++
			s.inSecond = 0
			return m, true
		}
		ev := s.y.randomEvent(s.r, s.second)
		idx := s.inSecond
		s.inSecond++
		if idx%s.n == s.p {
			if s.keyed {
				return stream.Item(ev.UserID, ev), true
			}
			return stream.Item(stream.Unit{}, ev), true
		}
	}
}

// NextCols appends up to max item rows to out and returns the count;
// 0 means the next event is a marker or end-of-stream (fetch it with
// Next). No event is boxed on this path: rows go straight into the
// batch's typed columns.
func (s *YahooColSource) NextCols(out stream.Columns, max int) int {
	appended := 0
	if s.keyed {
		tc := out.(*stream.Cols[int64, YahooEvent])
		for appended < max && s.second < s.y.cfg.Seconds && s.inSecond < s.y.cfg.EventsPerSecond {
			ev := s.y.randomEvent(s.r, s.second)
			idx := s.inSecond
			s.inSecond++
			if idx%s.n == s.p {
				tc.Append(ev.UserID, ev)
				appended++
			}
		}
		return appended
	}
	tc := out.(*stream.Cols[stream.Unit, YahooEvent])
	for appended < max && s.second < s.y.cfg.Seconds && s.inSecond < s.y.cfg.EventsPerSecond {
		ev := s.y.randomEvent(s.r, s.second)
		idx := s.inSecond
		s.inSecond++
		if idx%s.n == s.p {
			tc.Append(stream.Unit{}, ev)
			appended++
		}
	}
	return appended
}
