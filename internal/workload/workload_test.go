package workload

import (
	"testing"

	"datatrace/internal/db"
	"datatrace/internal/stream"
)

func TestYahooEventsShape(t *testing.T) {
	cfg := DefaultYahooConfig()
	cfg.EventsPerSecond = 50
	cfg.Seconds = 3
	y, err := NewYahoo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := y.Events()
	items, markers := 0, 0
	lastSecond := int64(-1)
	for _, e := range events {
		if e.IsMarker {
			markers++
			if e.Marker.Seq != lastSecond+1 {
				t.Fatalf("marker seq %d after %d", e.Marker.Seq, lastSecond)
			}
			lastSecond = e.Marker.Seq
			continue
		}
		items++
		ev := e.Value.(YahooEvent)
		// Watermark guarantee: all items before marker i have
		// EventTime < (i+1) seconds.
		if ev.EventTime >= (lastSecond+2)*1000 {
			t.Fatalf("event time %d violates the watermark after marker %d", ev.EventTime, lastSecond)
		}
		if ev.AdID < 0 || ev.AdID >= int64(y.Ads()) {
			t.Fatalf("ad id %d out of range", ev.AdID)
		}
	}
	if items != 150 || markers != 3 {
		t.Fatalf("items=%d markers=%d, want 150/3", items, markers)
	}
}

func TestYahooDeterminism(t *testing.T) {
	cfg := DefaultYahooConfig()
	cfg.EventsPerSecond = 20
	cfg.Seconds = 2
	y1, _ := NewYahoo(cfg)
	y2, _ := NewYahoo(cfg)
	a, b := y1.Events(), y2.Events()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("event %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestYahooIterMatchesEvents(t *testing.T) {
	cfg := DefaultYahooConfig()
	cfg.EventsPerSecond = 30
	cfg.Seconds = 2
	y, _ := NewYahoo(cfg)
	a := y.Events()
	b := Collect(y.Iter())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestYahooPartitionsCoverStream(t *testing.T) {
	cfg := DefaultYahooConfig()
	cfg.EventsPerSecond = 40
	cfg.Seconds = 3
	y, _ := NewYahoo(cfg)
	full := y.Events()
	for _, n := range []int{1, 2, 3} {
		parts := y.Partitions(n)
		var collected [][]stream.Event
		for _, p := range parts {
			collected = append(collected, Collect(p))
		}
		merged := stream.MergeEvents(collected...)
		if !stream.Equivalent(stream.U("Ut", "YItem"), merged, full) {
			t.Fatalf("partitions(%d) merged ≠ full stream", n)
		}
		// Every partition carries every marker.
		for pi, p := range collected {
			markers := 0
			for _, e := range p {
				if e.IsMarker {
					markers++
				}
			}
			if markers != cfg.Seconds {
				t.Fatalf("partition %d/%d has %d markers, want %d", pi, n, markers, cfg.Seconds)
			}
		}
	}
}

func TestYahooSetupDB(t *testing.T) {
	cfg := DefaultYahooConfig()
	y, _ := NewYahoo(cfg)
	d := db.New()
	if err := y.SetupDB(d); err != nil {
		t.Fatal(err)
	}
	ads := d.MustTable("ads")
	if ads.Len() != y.Ads() {
		t.Fatalf("ads table has %d rows, want %d", ads.Len(), y.Ads())
	}
	row, ok := ads.Get(37)
	if !ok {
		t.Fatal("ad 37 missing")
	}
	if row[1] != y.CampaignOf(37) {
		t.Fatalf("campaign of ad 37 = %v, want %d", row[1], y.CampaignOf(37))
	}
	users := d.MustTable("users")
	if users.Len() != cfg.Users {
		t.Fatalf("users table has %d rows, want %d", users.Len(), cfg.Users)
	}
}

func TestYahooConfigValidation(t *testing.T) {
	bad := DefaultYahooConfig()
	bad.Campaigns = 0
	if _, err := NewYahoo(bad); err == nil {
		t.Fatal("zero campaigns must fail")
	}
	bad = DefaultYahooConfig()
	bad.Seconds = 0
	if _, err := NewYahoo(bad); err == nil {
		t.Fatal("zero duration must fail")
	}
}

func TestSmartHomeWatermarkGuarantee(t *testing.T) {
	cfg := DefaultSmartHomeConfig()
	cfg.Seconds = 40
	s, err := NewSmartHome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := s.Events()
	markerIdx := int64(0)
	for _, e := range events {
		if e.IsMarker {
			if e.Marker.Seq != markerIdx {
				t.Fatalf("marker seq %d, want %d", e.Marker.Seq, markerIdx)
			}
			markerIdx++
			continue
		}
		m := e.Value.(PlugMeasurement)
		// Items after marker i must have Timestamp ≥ period·i.
		if m.Timestamp < int64(cfg.MarkerPeriod)*markerIdx {
			t.Fatalf("measurement at ts %d appears after marker %d", m.Timestamp, markerIdx-1)
		}
		// And strictly before the next marker's watermark.
		if m.Timestamp >= int64(cfg.MarkerPeriod)*(markerIdx+1) {
			t.Fatalf("measurement at ts %d too early (block %d)", m.Timestamp, markerIdx)
		}
	}
	if markerIdx != int64(cfg.Seconds/cfg.MarkerPeriod) {
		t.Fatalf("marker count %d, want %d", markerIdx, cfg.Seconds/cfg.MarkerPeriod)
	}
}

func TestSmartHomeHasGapsAndDuplicates(t *testing.T) {
	cfg := DefaultSmartHomeConfig()
	cfg.Seconds = 60
	s, _ := NewSmartHome(cfg)
	events := s.Events()
	seen := map[PlugKey]map[int64]int{}
	for _, e := range events {
		if e.IsMarker {
			continue
		}
		m := e.Value.(PlugMeasurement)
		if seen[m.Key] == nil {
			seen[m.Key] = map[int64]int{}
		}
		seen[m.Key][m.Timestamp]++
	}
	gaps, dups := 0, 0
	for _, perTs := range seen {
		for ts := int64(0); ts < int64(cfg.Seconds); ts += 2 {
			switch perTs[ts] {
			case 0:
				gaps++
			case 1:
			default:
				dups++
			}
		}
	}
	if gaps == 0 {
		t.Fatal("generator produced no gaps")
	}
	if dups == 0 {
		t.Fatal("generator produced no duplicate timestamps")
	}
}

func TestSmartHomeSetupDB(t *testing.T) {
	s, _ := NewSmartHome(DefaultSmartHomeConfig())
	d := db.New()
	if err := s.SetupDB(d); err != nil {
		t.Fatal(err)
	}
	plugs := d.MustTable("plugs")
	if plugs.Len() != len(s.Plugs()) {
		t.Fatalf("plugs table has %d rows, want %d", plugs.Len(), len(s.Plugs()))
	}
	k := s.Plugs()[0]
	row, ok := plugs.Get(k.String())
	if !ok || row[1] != s.DeviceTypeOf(k) {
		t.Fatalf("plug row %v", row)
	}
}

func TestSmartHomePartitionsByBuilding(t *testing.T) {
	cfg := DefaultSmartHomeConfig()
	cfg.Seconds = 30
	s, _ := NewSmartHome(cfg)
	full := s.Events()
	n := cfg.Buildings
	parts := s.PartitionsByBuilding(n)
	var collected [][]stream.Event
	for pi, p := range parts {
		evs := Collect(p)
		for _, e := range evs {
			if e.IsMarker {
				continue
			}
			if b := e.Value.(PlugMeasurement).Key.Building; b%n != pi {
				t.Fatalf("building %d leaked into partition %d", b, pi)
			}
		}
		collected = append(collected, evs)
	}
	merged := stream.MergeEvents(collected...)
	if !stream.Equivalent(stream.U("Ut", "SItem"), merged, full) {
		t.Fatal("building partitions do not reassemble the stream")
	}
}

func TestSmartHomeGroundTruthVariesByDeviceType(t *testing.T) {
	s, _ := NewSmartHome(DefaultSmartHomeConfig())
	levels := map[string]float64{}
	for _, k := range s.Plugs() {
		levels[s.DeviceTypeOf(k)] = s.GroundTruth(k, 0)
	}
	if len(levels) < 3 {
		t.Fatalf("only %d device types in deployment", len(levels))
	}
	distinct := map[float64]bool{}
	for _, v := range levels {
		distinct[v] = true
	}
	if len(distinct) < 3 {
		t.Fatal("device types share the same load profile")
	}
}

func TestSmartHomeConfigValidation(t *testing.T) {
	bad := DefaultSmartHomeConfig()
	bad.GapProb = 1.5
	if _, err := NewSmartHome(bad); err == nil {
		t.Fatal("bad probability must fail")
	}
	bad = DefaultSmartHomeConfig()
	bad.Buildings = 0
	if _, err := NewSmartHome(bad); err == nil {
		t.Fatal("zero buildings must fail")
	}
}

func TestEventTypeString(t *testing.T) {
	if View.String() != "view" || Click.String() != "click" || Purchase.String() != "purchase" {
		t.Fatal("event type names wrong")
	}
	if (PlugKey{1, 2, 3}).String() != "1/2/3" {
		t.Fatal("plug key rendering wrong")
	}
}
