package workload

import (
	"fmt"
	"math"
	"math/rand"

	"datatrace/internal/db"
	"datatrace/internal/stream"
)

// PlugKey uniquely identifies a smart plug: building, unit within the
// building, plug within the unit (the DEBS 2014 identifier triple).
type PlugKey struct {
	Building int
	Unit     int
	Plug     int
}

// String renders the key as b/u/p.
func (k PlugKey) String() string { return fmt.Sprintf("%d/%d/%d", k.Building, k.Unit, k.Plug) }

// PlugMeasurement is one smart-plug load reading: a timestamp in
// seconds and the instantaneous power draw in Watts, with the plug's
// identifier triple.
type PlugMeasurement struct {
	Timestamp int64
	Value     float64 // Watts
	Key       PlugKey
}

// DeviceTypes are the electrical device categories plugs are attached
// to; load prediction is separate per type (Figure 5's DType key).
var DeviceTypes = []string{"ac", "fridge", "lights", "oven", "tv", "washer"}

// SmartHomeConfig parameterizes the generator.
type SmartHomeConfig struct {
	// Buildings, UnitsPerBuilding and PlugsPerUnit size the
	// deployment.
	Buildings, UnitsPerBuilding, PlugsPerUnit int
	// Seconds is the stream's event-time length.
	Seconds int
	// MarkerPeriod is the marker interval in seconds (paper: 10; the
	// i-th marker is a watermark for timestamp 10·i).
	MarkerPeriod int
	// GapProb drops a measurement (missing data point to interpolate).
	GapProb float64
	// DupProb duplicates a measurement at the same timestamp.
	DupProb float64
	// Disorder shuffles items within each marker block, modelling the
	// hub's lack of ordering guarantees between watermarks.
	Disorder bool
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultSmartHomeConfig is a laptop-scale version of the DEBS 2014
// deployment.
func DefaultSmartHomeConfig() SmartHomeConfig {
	return SmartHomeConfig{
		Buildings:        4,
		UnitsPerBuilding: 5,
		PlugsPerUnit:     3,
		Seconds:          120,
		MarkerPeriod:     10,
		GapProb:          0.15,
		DupProb:          0.05,
		Disorder:         true,
		Seed:             1,
	}
}

// SmartHome generates the plug-measurement stream and the plug
// metadata table.
type SmartHome struct {
	cfg SmartHomeConfig
}

// NewSmartHome validates the configuration and returns a generator.
func NewSmartHome(cfg SmartHomeConfig) (*SmartHome, error) {
	if cfg.Buildings < 1 || cfg.UnitsPerBuilding < 1 || cfg.PlugsPerUnit < 1 {
		return nil, fmt.Errorf("workload: smart-home config needs a positive deployment: %+v", cfg)
	}
	if cfg.Seconds < 1 || cfg.MarkerPeriod < 1 {
		return nil, fmt.Errorf("workload: smart-home config needs positive duration and marker period: %+v", cfg)
	}
	if cfg.GapProb < 0 || cfg.GapProb >= 1 || cfg.DupProb < 0 || cfg.DupProb >= 1 {
		return nil, fmt.Errorf("workload: smart-home probabilities out of range: %+v", cfg)
	}
	return &SmartHome{cfg: cfg}, nil
}

// Plugs enumerates all plug keys.
func (s *SmartHome) Plugs() []PlugKey {
	var keys []PlugKey
	for b := 0; b < s.cfg.Buildings; b++ {
		for u := 0; u < s.cfg.UnitsPerBuilding; u++ {
			for p := 0; p < s.cfg.PlugsPerUnit; p++ {
				keys = append(keys, PlugKey{Building: b, Unit: u, Plug: p})
			}
		}
	}
	return keys
}

// DeviceTypeOf is the static plug → device type assignment.
func (s *SmartHome) DeviceTypeOf(k PlugKey) string {
	return DeviceTypes[(k.Building*31+k.Unit*7+k.Plug)%len(DeviceTypes)]
}

// SetupDB loads the plugs(plug, device_type) metadata table the JFM
// stage joins against.
func (s *SmartHome) SetupDB(d *db.DB) error {
	plugs, err := d.CreateTable("plugs", []db.Column{
		{Name: "plug", Type: db.String},
		{Name: "device_type", Type: db.String},
	}, "plug")
	if err != nil {
		return err
	}
	for _, k := range s.Plugs() {
		if err := plugs.Insert(k.String(), s.DeviceTypeOf(k)); err != nil {
			return err
		}
	}
	return nil
}

// baseLoad is the deterministic ground-truth load curve per device
// type: a type-specific level with a daily sinusoidal component. The
// prediction pipeline learns (an aggregate of) this curve.
func baseLoad(dtype string, ts int64) float64 {
	var level, swing, phase float64
	switch dtype {
	case "ac":
		level, swing, phase = 1500, 600, 0
	case "fridge":
		level, swing, phase = 150, 20, 1
	case "lights":
		level, swing, phase = 120, 100, 2
	case "oven":
		level, swing, phase = 800, 700, 3
	case "tv":
		level, swing, phase = 200, 150, 4
	default: // washer
		level, swing, phase = 500, 450, 5
	}
	day := float64(ts%86400) / 86400
	return level + swing*math.Sin(2*math.Pi*day+phase)
}

// BaseLoad exposes the per-device-type ground-truth load curve, so
// the prediction pipeline can build its training set and tests can
// score predictions.
func BaseLoad(dtype string, ts int64) float64 { return baseLoad(dtype, ts) }

// GroundTruth returns the noise-free load of a plug at a timestamp —
// the signal the generator perturbs; exposed so tests and the ML
// pipeline can quantify prediction error.
func (s *SmartHome) GroundTruth(k PlugKey, ts int64) float64 {
	return baseLoad(s.DeviceTypeOf(k), ts)
}

// Events materializes the measurement stream: every plug produces one
// reading every 2 seconds (with gaps and duplicates), markers appear
// every MarkerPeriod seconds, and the watermark guarantee holds — all
// items with Timestamp < MarkerPeriod·i are emitted before the i-th
// marker. With Disorder, items inside a block are shuffled.
func (s *SmartHome) Events() []stream.Event {
	r := rand.New(rand.NewSource(s.cfg.Seed))
	plugs := s.Plugs()
	var out []stream.Event
	seq := int64(0)
	for blockStart := 0; blockStart < s.cfg.Seconds; blockStart += s.cfg.MarkerPeriod {
		blockEnd := blockStart + s.cfg.MarkerPeriod
		if blockEnd > s.cfg.Seconds {
			blockEnd = s.cfg.Seconds
		}
		var block []stream.Event
		for ts := blockStart; ts < blockEnd; ts += 2 {
			for _, k := range plugs {
				if r.Float64() < s.cfg.GapProb {
					continue // missing data point
				}
				m := PlugMeasurement{
					Timestamp: int64(ts),
					Value:     s.GroundTruth(k, int64(ts)) + r.NormFloat64()*10,
					Key:       k,
				}
				block = append(block, stream.Item(stream.Unit{}, m))
				if r.Float64() < s.cfg.DupProb {
					dup := m
					dup.Value += r.NormFloat64() * 5
					block = append(block, stream.Item(stream.Unit{}, dup))
				}
			}
		}
		if s.cfg.Disorder {
			r.Shuffle(len(block), func(i, j int) { block[i], block[j] = block[j], block[i] })
		}
		out = append(out, block...)
		out = append(out, stream.Mark(stream.Marker{Seq: seq, Timestamp: int64(blockEnd)}))
		seq++
	}
	return out
}

// PartitionsByBuilding splits the stream into one sub-source per
// building (Building0..BuildingN in Figure 5), each carrying the full
// marker sequence. n must divide into the building count or be the
// building count; excess partitions replay only markers.
func (s *SmartHome) PartitionsByBuilding(n int) []Iterator {
	if n < 1 {
		n = 1
	}
	events := s.Events()
	parts := make([]Iterator, n)
	for p := 0; p < n; p++ {
		i, p := 0, p
		parts[p] = func() (stream.Event, bool) {
			for i < len(events) {
				e := events[i]
				i++
				if e.IsMarker {
					return e, true
				}
				m := e.Value.(PlugMeasurement)
				if m.Key.Building%n == p {
					return e, true
				}
			}
			return stream.Event{}, false
		}
	}
	return parts
}
