package workload

import (
	"testing"

	"datatrace/internal/stream"
)

// This file checks the load-balance premise behind the compiler's
// fields grouping and combiner placement: stream.DefaultHash must
// spread the key populations the evaluation workloads actually route
// on — Yahoo campaign ids and Smart Homes house keys — roughly evenly
// across instances. A pathological hash would silently serialize a
// "parallel" keyed stage (and starve the per-destination combining
// buffers), so the bound is pinned here: at parallelism 2, 4 and 8 no
// instance may receive more than 2× its fair share of distinct keys.

// assertBalanced hashes every key at several parallelisms and fails
// if any instance holds more than twice the fair share.
func assertBalanced(t *testing.T, population string, keys []any) {
	t.Helper()
	for _, par := range []int{2, 4, 8} {
		counts := make([]int, par)
		for _, k := range keys {
			counts[stream.DefaultHash(k)%par]++
		}
		fair := float64(len(keys)) / float64(par)
		for inst, c := range counts {
			if float64(c) > 2*fair {
				t.Errorf("%s: par=%d instance %d got %d of %d keys (fair share %.1f, limit %.1f); distribution %v",
					population, par, inst, c, len(keys), fair, 2*fair, counts)
			}
		}
	}
}

// TestDefaultHashBalancedOnWorkloadKeys runs the balance check over
// both benchmark key populations at their default sizes.
func TestDefaultHashBalancedOnWorkloadKeys(t *testing.T) {
	y, err := NewYahoo(DefaultYahooConfig())
	if err != nil {
		t.Fatal(err)
	}
	campaigns := make([]any, 0, 100)
	for ad := int64(0); ad < int64(y.Ads()); ad++ {
		cid := y.CampaignOf(ad)
		if len(campaigns) == 0 || campaigns[len(campaigns)-1] != any(cid) {
			campaigns = append(campaigns, cid)
		}
	}
	assertBalanced(t, "yahoo campaign ids", campaigns)

	// A wider campaign population than the benchmark default, so the
	// bound is not an artifact of the small id range.
	wide := make([]any, 0, 1000)
	for cid := int64(0); cid < 1000; cid++ {
		wide = append(wide, cid)
	}
	assertBalanced(t, "yahoo campaign ids (wide)", wide)

	sh, err := NewSmartHome(DefaultSmartHomeConfig())
	if err != nil {
		t.Fatal(err)
	}
	houses := map[PlugKey]bool{}
	plugs := make([]any, 0, len(sh.Plugs()))
	for _, k := range sh.Plugs() {
		plugs = append(plugs, k)
		houses[PlugKey{Building: k.Building, Unit: k.Unit}] = true
	}
	assertBalanced(t, "smart homes plug keys", plugs)

	houseKeys := make([]any, 0, len(houses))
	for h := range houses {
		houseKeys = append(houseKeys, h)
	}
	assertBalanced(t, "smart homes house keys", houseKeys)
}
