// Package workload generates the two benchmark workloads of the
// paper's evaluation: the (extended) Yahoo Streaming Benchmark ad
// events of section 6 / Figure 4, and the DEBS 2014 Smart Homes
// plug-measurement stream of Figure 5. Both generators are
// deterministic for a given seed, emit periodic synchronization
// markers exactly as the paper's sources do (at event-time second
// boundaries), and can be partitioned into several sub-sources that
// share the marker sequence (Yahoo0..YahooN / Building0..BuildingN in
// the paper's figures).
package workload

import (
	"fmt"
	"math/rand"

	"datatrace/internal/db"
	"datatrace/internal/stream"
)

// EventType enumerates the Yahoo benchmark's interaction kinds.
type EventType uint8

const (
	// View is an ad impression — the only type the pipeline keeps.
	View EventType = iota
	// Click is an ad click.
	Click
	// Purchase is a conversion.
	Purchase
)

// String renders the event type.
func (e EventType) String() string {
	switch e {
	case View:
		return "view"
	case Click:
		return "click"
	default:
		return "purchase"
	}
}

// YahooEvent is one record of the Yahoo Streaming Benchmark stream:
// (userId, pageId, adId, eventType, eventTime).
type YahooEvent struct {
	UserID    int64
	PageID    int64
	AdID      int64
	Type      EventType
	EventTime int64 // milliseconds
}

// YahooConfig parameterizes the generator.
type YahooConfig struct {
	// Campaigns is the number of ad campaigns (benchmark default 100).
	Campaigns int
	// AdsPerCampaign maps ads to campaigns (benchmark default 10).
	AdsPerCampaign int
	// Users and Pages size the id spaces.
	Users, Pages int
	// EventsPerSecond is the event-time arrival rate.
	EventsPerSecond int
	// Seconds is the stream's event-time length; one marker is
	// emitted per second.
	Seconds int
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultYahooConfig mirrors the benchmark's published shape, scaled
// for in-process runs.
func DefaultYahooConfig() YahooConfig {
	return YahooConfig{
		Campaigns:       100,
		AdsPerCampaign:  10,
		Users:           1000,
		Pages:           100,
		EventsPerSecond: 1000,
		Seconds:         10,
		Seed:            1,
	}
}

// Yahoo generates the benchmark stream and its reference tables.
type Yahoo struct {
	cfg YahooConfig
}

// NewYahoo validates the configuration and returns a generator.
func NewYahoo(cfg YahooConfig) (*Yahoo, error) {
	if cfg.Campaigns < 1 || cfg.AdsPerCampaign < 1 || cfg.Users < 1 || cfg.Pages < 1 {
		return nil, fmt.Errorf("workload: yahoo config needs positive id spaces: %+v", cfg)
	}
	if cfg.EventsPerSecond < 1 || cfg.Seconds < 1 {
		return nil, fmt.Errorf("workload: yahoo config needs positive rate and duration: %+v", cfg)
	}
	return &Yahoo{cfg: cfg}, nil
}

// Ads returns the total number of ads.
func (y *Yahoo) Ads() int { return y.cfg.Campaigns * y.cfg.AdsPerCampaign }

// CampaignOf is the static ad → campaign map the database table is
// loaded from.
func (y *Yahoo) CampaignOf(adID int64) int64 {
	return adID / int64(y.cfg.AdsPerCampaign)
}

// LocationOf is the static user → location map used by Queries III
// and VI (locations partition the user space into 10 regions).
func (y *Yahoo) LocationOf(userID int64) int64 { return userID % 10 }

// SetupDB creates and loads the benchmark's reference tables:
// ads(ad_id, campaign_id) indexed by primary key, and
// users(user_id, location).
func (y *Yahoo) SetupDB(d *db.DB) error {
	ads, err := d.CreateTable("ads", []db.Column{
		{Name: "ad_id", Type: db.Int},
		{Name: "campaign_id", Type: db.Int},
	}, "ad_id")
	if err != nil {
		return err
	}
	for ad := int64(0); ad < int64(y.Ads()); ad++ {
		if err := ads.Insert(ad, y.CampaignOf(ad)); err != nil {
			return err
		}
	}
	users, err := d.CreateTable("users", []db.Column{
		{Name: "user_id", Type: db.Int},
		{Name: "location", Type: db.Int},
	}, "user_id")
	if err != nil {
		return err
	}
	for u := int64(0); u < int64(y.cfg.Users); u++ {
		if err := users.Insert(u, y.LocationOf(u)); err != nil {
			return err
		}
	}
	return nil
}

// Events materializes the full stream: EventsPerSecond items per
// event-time second, in increasing event time, with a marker at every
// second boundary. Items are keyed by stream.Unit (the source type is
// U(Ut, YItem)).
func (y *Yahoo) Events() []stream.Event {
	r := rand.New(rand.NewSource(y.cfg.Seed))
	total := y.cfg.EventsPerSecond * y.cfg.Seconds
	out := make([]stream.Event, 0, total+y.cfg.Seconds)
	for s := 0; s < y.cfg.Seconds; s++ {
		for i := 0; i < y.cfg.EventsPerSecond; i++ {
			out = append(out, stream.Item(stream.Unit{}, y.randomEvent(r, s)))
		}
		out = append(out, stream.Mark(stream.Marker{
			Seq:       int64(s),
			Timestamp: int64(s+1) * 1000,
		}))
	}
	return out
}

func (y *Yahoo) randomEvent(r *rand.Rand, second int) YahooEvent {
	return YahooEvent{
		UserID:    int64(r.Intn(y.cfg.Users)),
		PageID:    int64(r.Intn(y.cfg.Pages)),
		AdID:      int64(r.Intn(y.Ads())),
		Type:      EventType(r.Intn(3)),
		EventTime: int64(second)*1000 + int64(r.Intn(1000)),
	}
}

// Iterator is a pull-based event source: it returns ok=false when
// exhausted. It matches storm.Spout's Next contract without importing
// the runtime package.
type Iterator func() (stream.Event, bool)

// Iter streams the same events as Events without materializing them —
// the form spouts consume in long benchmark runs.
func (y *Yahoo) Iter() Iterator {
	r := rand.New(rand.NewSource(y.cfg.Seed))
	second, inSecond := 0, 0
	return func() (stream.Event, bool) {
		if second >= y.cfg.Seconds {
			return stream.Event{}, false
		}
		if inSecond == y.cfg.EventsPerSecond {
			m := stream.Mark(stream.Marker{Seq: int64(second), Timestamp: int64(second+1) * 1000})
			second++
			inSecond = 0
			return m, true
		}
		inSecond++
		return stream.Item(stream.Unit{}, y.randomEvent(r, second)), true
	}
}

// Partitions splits the stream into n sub-sources: items are dealt
// round-robin, and every partition carries the full marker sequence,
// as the paper's partitioned sources (Yahoo0..YahooN) do.
func (y *Yahoo) Partitions(n int) []Iterator {
	if n < 1 {
		n = 1
	}
	parts := make([]Iterator, n)
	for p := 0; p < n; p++ {
		r := rand.New(rand.NewSource(y.cfg.Seed))
		second, inSecond, p := 0, 0, p
		parts[p] = func() (stream.Event, bool) {
			for {
				if second >= y.cfg.Seconds {
					return stream.Event{}, false
				}
				if inSecond == y.cfg.EventsPerSecond {
					m := stream.Mark(stream.Marker{Seq: int64(second), Timestamp: int64(second+1) * 1000})
					second++
					inSecond = 0
					return m, true
				}
				ev := y.randomEvent(r, second)
				idx := inSecond
				inSecond++
				if idx%n == p {
					return stream.Item(stream.Unit{}, ev), true
				}
			}
		}
	}
	return parts
}

// Collect drains an iterator into a slice (test helper and example
// convenience).
func Collect(it Iterator) []stream.Event {
	var out []stream.Event
	for {
		e, ok := it()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}
