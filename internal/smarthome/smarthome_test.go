package smarthome

import (
	"testing"

	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	cfg := workload.DefaultSmartHomeConfig()
	cfg.Buildings = 3
	cfg.UnitsPerBuilding = 2
	cfg.PlugsPerUnit = 2
	cfg.Seconds = 60
	env, err := NewEnv(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestPipelineTypeChecks(t *testing.T) {
	env := testEnv(t)
	for _, par := range []int{1, 4} {
		if err := PipelineDAG(env, par).Check(); err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
	}
}

func TestReferenceProducesPredictions(t *testing.T) {
	env := testEnv(t)
	ref, err := Reference(env)
	if err != nil {
		t.Fatal(err)
	}
	sink := ref["sink"]
	preds := 0
	types := map[string]bool{}
	for _, e := range sink {
		if e.IsMarker {
			continue
		}
		types[e.Key.(string)] = true
		v := e.Value.(VT)
		if v.Value <= 0 {
			t.Fatalf("non-positive power prediction %v", v)
		}
		preds++
	}
	if preds == 0 {
		t.Fatal("no predictions emitted")
	}
	if types["tv"] {
		t.Fatal("filtered device type leaked through JFM")
	}
	if len(types) < 3 {
		t.Fatalf("predictions for only %d device types", len(types))
	}
}

// TestDeploymentEquivalence is Figure 5's correctness claim: the
// parallel deployments of the pipeline produce the reference trace.
func TestDeploymentEquivalence(t *testing.T) {
	env := testEnv(t)
	ref, err := Reference(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 3} {
		res, err := Run(env, par, 3)
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		if !stream.Equivalent(SinkType(), res.Sinks["sink"], ref["sink"]) {
			t.Fatalf("par %d: deployed output differs from reference (%d vs %d events)",
				par, len(res.Sinks["sink"]), len(ref["sink"]))
		}
	}
}

func TestLinearInterpolationFillsGaps(t *testing.T) {
	// Feed LI directly: measurements at ts 0 and 4 must produce points
	// at 1, 2, 3, 4 with linearly interpolated values.
	li := liOp()
	key := workload.PlugKey{Building: 0, Unit: 0, Plug: 0}
	in := []stream.Event{
		stream.Item(key, VT{Value: 10, TS: 0}),
		stream.Item(key, VT{Value: 18, TS: 4}),
	}
	inst := li.New()
	var out []stream.Event
	for _, e := range in {
		inst.Next(e, func(e stream.Event) { out = append(out, e) })
	}
	want := []VT{{10, 0}, {12, 1}, {14, 2}, {16, 3}, {18, 4}}
	if len(out) != len(want) {
		t.Fatalf("got %d outputs, want %d: %v", len(out), len(want), out)
	}
	for i, e := range out {
		v := e.Value.(VT)
		if v != want[i] {
			t.Fatalf("output %d = %+v, want %+v", i, v, want[i])
		}
	}
}

func TestLinearInterpolationDropsDuplicates(t *testing.T) {
	li := liOp()
	key := workload.PlugKey{}
	inst := li.New()
	var out []stream.Event
	emit := func(e stream.Event) { out = append(out, e) }
	inst.Next(stream.Item(key, VT{Value: 10, TS: 0}), emit)
	inst.Next(stream.Item(key, VT{Value: 11, TS: 0}), emit) // duplicate ts
	inst.Next(stream.Item(key, VT{Value: 13, TS: 1}), emit)
	// First item emits itself; duplicate emits nothing but becomes the
	// state; the ts=1 item interpolates from 11 → 13 over dt=1.
	if len(out) != 2 {
		t.Fatalf("got %d outputs: %v", len(out), out)
	}
	if v := out[1].Value.(VT); v != (VT{Value: 13, TS: 1}) {
		t.Fatalf("second output %+v", v)
	}
}

func TestAvgGroupsByTimestamp(t *testing.T) {
	avg := avgOp()
	inst := avg.New()
	var out []stream.Event
	emit := func(e stream.Event) { out = append(out, e) }
	inst.Next(stream.Item("ac", VT{Value: 10, TS: 5}), emit)
	inst.Next(stream.Item("ac", VT{Value: 20, TS: 5}), emit)
	inst.Next(stream.Item("ac", VT{Value: 7, TS: 6}), emit)
	inst.Next(stream.Mark(stream.Marker{Seq: 0, Timestamp: 10}), emit)
	if len(out) != 3 { // avg(5), avg(6), marker
		t.Fatalf("got %v", out)
	}
	if v := out[0].Value.(VT); v != (VT{Value: 15, TS: 5}) {
		t.Fatalf("avg at ts 5 = %+v", v)
	}
	if v := out[1].Value.(VT); v != (VT{Value: 7, TS: 6}) {
		t.Fatalf("avg at ts 6 = %+v", v)
	}
	if !out[2].IsMarker {
		t.Fatal("marker not forwarded after flush")
	}
}

func TestPredictionAccuracy(t *testing.T) {
	// With modest noise the REPTree should track the ground-truth
	// curves well: mean absolute percentage error under 15%.
	env := testEnv(t)
	ref, err := Reference(env)
	if err != nil {
		t.Fatal(err)
	}
	mape, n, err := PredictionError(env, ref["sink"])
	if err != nil {
		t.Fatal(err)
	}
	if n < 50 {
		t.Fatalf("only %d predictions scored", n)
	}
	if mape > 0.15 {
		t.Fatalf("MAPE = %.3f, want ≤ 0.15", mape)
	}
}

func TestPredictionErrorOnEmptySink(t *testing.T) {
	env := testEnv(t)
	if _, _, err := PredictionError(env, nil); err == nil {
		t.Fatal("empty sink must error")
	}
}

func TestKeepFilterCustomSet(t *testing.T) {
	cfg := workload.DefaultSmartHomeConfig()
	cfg.Buildings = 2
	cfg.UnitsPerBuilding = 2
	cfg.PlugsPerUnit = 2
	cfg.Seconds = 30
	env, err := NewEnv(cfg, []string{"ac"})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Reference(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ref["sink"] {
		if !e.IsMarker && e.Key.(string) != "ac" {
			t.Fatalf("unexpected device type %v", e.Key)
		}
	}
}
