// Package smarthome implements the paper's case study (section 6,
// Figures 5 and 6): power-usage prediction over the DEBS 2014 Smart
// Homes plug-measurement stream, as the seven-stage transduction DAG
//
//	JFM → SORT → LI → Map → SORT → AVG → Predict
//
// with a REPTree regression model for the prediction stage. Every
// stage is a Table 1 template or the built-in SORT, so the whole
// pipeline type-checks as U(Ut,SItem) → O(DType,VT) and deploys in
// parallel with preserved semantics.
package smarthome

import (
	"fmt"

	"datatrace/internal/compile"
	"datatrace/internal/core"
	"datatrace/internal/db"
	"datatrace/internal/ml"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

// VT is a timestamped scalar value (the paper's V = {scalar, ts}).
type VT struct {
	Value float64
	TS    int64
}

// PredictHorizon is the prediction horizon in seconds (10 minutes).
const PredictHorizon = 600

// PastWindow is the feature window in seconds (1 minute).
const PastWindow = 60

// Env bundles the case study's substrate: the workload generator, the
// plug metadata table and the trained regression tree.
type Env struct {
	// Cfg is the workload configuration.
	Cfg workload.SmartHomeConfig
	// Gen generates the measurement stream.
	Gen *workload.SmartHome
	// DB holds the plugs metadata table.
	DB *db.DB
	// Plugs is the plug → device type table JFM joins against.
	Plugs *db.Table
	// Keep is the set of device types the JFM stage retains.
	Keep map[string]bool
	// Tree is the trained REPTree predictor.
	Tree *ml.REPTree
}

// NewEnv sets up the database, selects the device types to keep (nil
// keeps every type except "tv", mirroring the paper's filtering), and
// trains the REPTree on a sample of the ground-truth load curves.
func NewEnv(cfg workload.SmartHomeConfig, keep []string) (*Env, error) {
	gen, err := workload.NewSmartHome(cfg)
	if err != nil {
		return nil, err
	}
	d := db.New()
	if err := gen.SetupDB(d); err != nil {
		return nil, err
	}
	keepSet := map[string]bool{}
	if keep == nil {
		for _, dt := range workload.DeviceTypes {
			if dt != "tv" {
				keepSet[dt] = true
			}
		}
	} else {
		for _, dt := range keep {
			keepSet[dt] = true
		}
	}
	tree, err := trainTree()
	if err != nil {
		return nil, err
	}
	return &Env{
		Cfg:   cfg,
		Gen:   gen,
		DB:    d,
		Plugs: d.MustTable("plugs"),
		Keep:  keepSet,
		Tree:  tree,
	}, nil
}

// trainTree fits the predictor on the ground-truth per-device-type
// load curves: features are (time of day, current average load,
// past-minute consumption) and the label is the average power over
// the next PredictHorizon seconds — the paper's "trained on a subset
// of the data".
func trainTree() (*ml.REPTree, error) {
	var data ml.Dataset
	for _, dtype := range workload.DeviceTypes {
		base := func(ts int64) float64 { return workload.BaseLoad(dtype, ts) }
		for ts := int64(PastWindow); ts < 86400; ts += 97 {
			past := 0.0
			for s := ts - PastWindow + 1; s <= ts; s++ {
				past += base(s)
			}
			future := 0.0
			for s := ts + 1; s <= ts+PredictHorizon; s += 10 {
				future += base(s)
			}
			future /= float64(PredictHorizon / 10)
			data.Append([]float64{float64(ts % 86400), base(ts), past}, future)
		}
	}
	return ml.TrainREPTree(data, ml.DefaultREPTreeConfig())
}

// jfmOp is Figure 5's JFM stage: join with the plugs table, filter to
// the kept device types, and reorganize the tuple into a plug key and
// a timestamped value. U(Ut,SItem) → U(Plug,VT).
func jfmOp(env *Env) core.Operator {
	return &core.Stateless[stream.Unit, workload.PlugMeasurement, workload.PlugKey, VT]{
		OpName: "JFM",
		In:     stream.U("Ut", "SItem"),
		Out:    stream.U("Plug", "VT"),
		OnItem: func(emit core.Emit[workload.PlugKey, VT], _ stream.Unit, m workload.PlugMeasurement) {
			row, ok := env.Plugs.Get(m.Key.String())
			if !ok {
				return
			}
			if !env.Keep[row[1].(string)] {
				return
			}
			emit(m.Key, VT{Value: m.Value, TS: m.Timestamp})
		},
	}
}

// vtLess is the strict total order SORT imposes per key: by
// timestamp, ties broken by value so duplicate timestamps sort
// deterministically in every deployment.
func vtLess(a, b VT) bool {
	if a.TS != b.TS {
		return a.TS < b.TS
	}
	return a.Value < b.Value
}

func sortPlugOp() core.Operator {
	return &core.Sort[workload.PlugKey, VT]{
		OpName: "SORT-plug",
		In:     stream.U("Plug", "VT"),
		Out:    stream.O("Plug", "VT"),
		Less:   vtLess,
	}
}

// liOp is Table 2's linearInterpolation, verbatim: for every plug
// independently, fill in missing per-second data points between the
// previous and current measurement. Duplicate timestamps update the
// state without emitting. O(Plug,VT) → O(Plug,VT).
func liOp() core.Operator {
	return &core.KeyedOrdered[workload.PlugKey, VT, VT, *VT]{
		OpName:       "LI",
		In:           stream.O("Plug", "VT"),
		Out:          stream.O("Plug", "VT"),
		InitialState: func() *VT { return nil },
		OnItem: func(emit func(VT), st *VT, _ workload.PlugKey, v VT) *VT {
			if st == nil {
				emit(v)
				return &v
			}
			dt := v.TS - st.TS
			if dt <= 0 {
				// Duplicate (or stale) timestamp: adopt the new value
				// as the state, emit nothing (Table 2's dt=0 case).
				return &v
			}
			x := st.Value
			for i := int64(1); i <= dt; i++ {
				y := x + float64(i)*(v.Value-x)/float64(dt)
				emit(VT{Value: y, TS: st.TS + i})
			}
			return &v
		},
	}
}

// mapOp projects the plug key to its device type. The input is the
// ordered O(Plug,VT), consumed as U(Plug,VT) by subtyping; the output
// is unordered per device type and must be re-sorted. O(Plug,VT) →
// U(DType,VT).
func mapOp(env *Env) core.Operator {
	return &core.Stateless[workload.PlugKey, VT, string, VT]{
		OpName: "Map",
		In:     stream.U("Plug", "VT"),
		Out:    stream.U("DType", "VT"),
		OnItem: func(emit core.Emit[string, VT], k workload.PlugKey, v VT) {
			emit(env.Gen.DeviceTypeOf(k), v)
		},
	}
}

func sortDTypeOp() core.Operator {
	return &core.Sort[string, VT]{
		OpName: "SORT-dtype",
		In:     stream.U("DType", "VT"),
		Out:    stream.O("DType", "VT"),
		Less:   vtLess,
	}
}

// avgState groups consecutive equal-timestamp values.
type avgState struct {
	ts    int64
	sum   float64
	count int64
}

// avgOp computes, per device type, the average of all values with
// the same timestamp (one output per second). A group is flushed when
// a later timestamp arrives or at a marker (the watermark guarantees
// no more values for past seconds). O(DType,VT) → O(DType,VT).
func avgOp() core.Operator {
	return &core.KeyedOrdered[string, VT, VT, *avgState]{
		OpName:       "AVG",
		In:           stream.O("DType", "VT"),
		Out:          stream.O("DType", "VT"),
		InitialState: func() *avgState { return nil },
		OnItem: func(emit func(VT), st *avgState, _ string, v VT) *avgState {
			if st != nil && v.TS != st.ts {
				emit(VT{Value: st.sum / float64(st.count), TS: st.ts})
				st = nil
			}
			if st == nil {
				st = &avgState{ts: v.TS}
			}
			st.sum += v.Value
			st.count++
			return st
		},
		OnMarker: func(emit func(VT), st *avgState, _ string, m stream.Marker) *avgState {
			if st != nil {
				emit(VT{Value: st.sum / float64(st.count), TS: st.ts})
			}
			return nil
		},
	}
}

// predictState is the per-device-type feature window: the last
// PastWindow per-second averages.
type predictState struct {
	window []VT
}

// predictOp runs the REPTree on (time of day, current load,
// past-minute consumption) for every per-second average and emits the
// predicted average power over the next 10 minutes. O(DType,VT) →
// O(DType,VT).
func predictOp(env *Env) core.Operator {
	return &core.KeyedOrdered[string, VT, VT, *predictState]{
		OpName:       "Predict",
		In:           stream.O("DType", "VT"),
		Out:          stream.O("DType", "VT"),
		InitialState: func() *predictState { return &predictState{} },
		OnItem: func(emit func(VT), st *predictState, _ string, v VT) *predictState {
			st.window = append(st.window, v)
			cut := 0
			for cut < len(st.window) && st.window[cut].TS <= v.TS-PastWindow {
				cut++
			}
			st.window = st.window[cut:]
			past := 0.0
			for _, w := range st.window {
				past += w.Value
			}
			pred := env.Tree.Predict([]float64{float64(v.TS % 86400), v.Value, past})
			emit(VT{Value: pred, TS: v.TS})
			return st
		},
	}
}

// PipelineDAG builds Figure 5's transduction DAG at the given
// per-stage parallelism.
func PipelineDAG(env *Env, par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("hub", stream.U("Ut", "SItem"))
	jfm := d.Op(jfmOp(env), par, src)
	s1 := d.Op(sortPlugOp(), par, jfm)
	li := d.Op(liOp(), par, s1)
	mp := d.Op(mapOp(env), par, li)
	s2 := d.Op(sortDTypeOp(), par, mp)
	avg := d.Op(avgOp(), par, s2)
	pred := d.Op(predictOp(env), par, avg)
	d.Sink("sink", pred)
	return d
}

// Reference computes the pipeline's denotation on the full stream.
func Reference(env *Env) (map[string][]stream.Event, error) {
	return PipelineDAG(env, 1).Eval(map[string][]stream.Event{"hub": env.Gen.Events()})
}

// Run compiles the DAG and executes it on the storm runtime, with the
// source partitioned by building across sourcePar spout instances.
func Run(env *Env, par, sourcePar int) (*storm.Result, error) {
	if par < 1 {
		par = 1
	}
	if sourcePar < 1 {
		sourcePar = 1
	}
	sources := env.Gen.PartitionsByBuilding(sourcePar)
	top, err := compile.Compile(PipelineDAG(env, par), map[string]compile.SourceSpec{
		"hub": {Parallelism: sourcePar, Factory: func(i int) storm.Spout {
			return storm.SpoutFunc(sources[i])
		}},
	}, nil)
	if err != nil {
		return nil, err
	}
	return top.Run()
}

// SinkType is the pipeline's output data-trace type.
func SinkType() stream.Type { return stream.O("DType", "VT") }

// PredictionError summarizes how far the pipeline's predictions are
// from the generator's ground truth: the mean absolute percentage
// error over all emitted predictions.
func PredictionError(env *Env, sink []stream.Event) (mape float64, n int, err error) {
	var total float64
	for _, e := range sink {
		if e.IsMarker {
			continue
		}
		dtype := e.Key.(string)
		v := e.Value.(VT)
		truth := 0.0
		for s := v.TS + 1; s <= v.TS+PredictHorizon; s += 10 {
			truth += workload.BaseLoad(dtype, s)
		}
		truth /= float64(PredictHorizon / 10)
		if truth == 0 {
			continue
		}
		diff := v.Value - truth
		if diff < 0 {
			diff = -diff
		}
		total += diff / truth
		n++
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("smarthome: no predictions in sink stream")
	}
	return total / float64(n), n, nil
}
