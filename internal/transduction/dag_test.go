package transduction

import (
	"strings"
	"testing"

	"datatrace/internal/trace"
)

// kahnMergeDAG builds Example 3.7 as a general transduction DAG: two
// linearly ordered channels merged deterministically.
func kahnMergeDAG() *DAG {
	d := NewDAG()
	chanType := func(tag trace.Tag) trace.Type {
		return trace.NewType("chan-"+string(tag), trace.Channels{})
	}
	s1 := d.Source("left", chanType("I1"))
	s2 := d.Source("right", chanType("I2"))
	merge := Denote("merge", DeterministicMerge(), MergeInputType(), MergeOutputType())
	merge.In.Name = "T*xT*"
	m := d.Process(merge, s1, s2)
	d.Sink("out", m)
	return d
}

func TestGeneralDAGKahnMerge(t *testing.T) {
	d := kahnMergeDAG()
	out, err := d.Denote(map[string][]trace.Item{
		"left":  {trace.It("I1", "a"), trace.It("I1", "b")},
		"right": {trace.It("I2", "x"), trace.It("I2", "y"), trace.It("I2", "z")},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Item{
		trace.It("O", "a"), trace.It("O", "x"),
		trace.It("O", "b"), trace.It("O", "y"),
	}
	if !trace.Equivalent(trace.Linear{}, out["out"], want) {
		t.Fatalf("got %s want %s", trace.Render(out["out"]), trace.Render(want))
	}
}

func TestGeneralDAGPipelineSmax(t *testing.T) {
	// Bag(Nat)+ → smax → linear numbers → double.
	d := NewDAG()
	src := d.Source("nums", SMaxInputType())
	smax := Denote("smax", StreamingMax(), SMaxInputType(), SMaxOutputType())
	mx := d.Process(smax, src)
	double := Denote("double", Stateless(func(it trace.Item) []trace.Item {
		return []trace.Item{trace.It("out", it.Value.(int)*2)}
	}), SMaxOutputType(), trace.NewType("Nat*", trace.Linear{}))
	db := d.Process(double, mx)
	d.Sink("out", db)
	in := []trace.Item{
		trace.It("n", 4), trace.It("n", 9), trace.It("#", nil), trace.It("n", 2), trace.It("#", nil),
	}
	out, err := d.Denote(map[string][]trace.Item{"nums": in})
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Item{trace.It("out", 18), trace.It("out", 18)}
	if !trace.Equivalent(trace.Linear{}, out["out"], want) {
		t.Fatalf("got %s want %s", trace.Render(out["out"]), trace.Render(want))
	}
}

func TestGeneralDAGConsistency(t *testing.T) {
	// smax over a bag input: the DAG's denotation must not depend on
	// the representative chosen for the bag.
	d := NewDAG()
	src := d.Source("nums", SMaxInputType())
	mx := d.Process(Denote("smax", StreamingMax(), SMaxInputType(), SMaxOutputType()), src)
	d.Sink("out", mx)
	in := []trace.Item{
		trace.It("n", 4), trace.It("n", 9), trace.It("n", 1), trace.It("#", nil),
		trace.It("n", 12), trace.It("#", nil),
	}
	if err := d.CheckDenotationConsistency(map[string][]trace.Item{"nums": in}, 200); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralDAGConsistencyCatchesOrderDependence(t *testing.T) {
	// The broken streaming max emits per-item partial maxima; over a
	// bag source the DAG is not ≡-respecting and the checker must say
	// so.
	d := NewDAG()
	src := d.Source("nums", SMaxInputType())
	mx := d.Process(Denote("broken", BrokenStreamingMax(), SMaxInputType(), SMaxOutputType()), src)
	d.Sink("out", mx)
	in := []trace.Item{trace.It("n", 4), trace.It("n", 9), trace.It("#", nil)}
	err := d.CheckDenotationConsistency(map[string][]trace.Item{"nums": in}, 100)
	if err == nil || !strings.Contains(err.Error(), "not ≡-respecting") {
		t.Fatalf("got %v", err)
	}
}

func TestGeneralDAGCheckErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *DAG
		want  string
	}{
		{"type mismatch", func() *DAG {
			d := NewDAG()
			src := d.Source("s", trace.NewType("A", trace.Linear{}))
			tr := Trace{Name: "f", In: trace.NewType("B", trace.Linear{}), Out: trace.NewType("C", trace.Linear{}),
				Apply: func(u []trace.Item) []trace.Item { return u }}
			d.Sink("out", d.Process(tr, src))
			return d
		}, "expects input B"},
		{"duplicate names", func() *DAG {
			d := NewDAG()
			a := d.Source("x", trace.NewType("A", trace.Linear{}))
			d.Source("x", trace.NewType("A", trace.Linear{}))
			d.Sink("out", a)
			return d
		}, "duplicate vertex"},
		{"no inputs", func() *DAG {
			d := NewDAG()
			tr := Trace{Name: "f", In: trace.NewType("A", trace.Linear{}), Out: trace.NewType("A", trace.Linear{}),
				Apply: func(u []trace.Item) []trace.Item { return u }}
			d.Sink("out", d.Process(tr))
			return d
		}, "no inputs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Check()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want %q", err, tc.want)
			}
		})
	}
}

func TestGeneralDAGPartition(t *testing.T) {
	// Example 3.8 as a DAG: linear input, per-key output channels.
	d := NewDAG()
	linear := trace.NewType("T*", trace.Linear{})
	perKey := trace.NewType("K→T*", trace.Channels{})
	src := d.Source("in", linear)
	part := Denote("partition", PartitionByKey(func(v any) trace.Tag {
		if v.(int)%2 == 0 {
			return "even"
		}
		return "odd"
	}), linear, perKey)
	part.In.Name = "T*"
	p := d.Process(part, src)
	d.Sink("out", p)
	in := []trace.Item{trace.It("in", 1), trace.It("in", 2), trace.It("in", 3)}
	// The source type is linear, so there is exactly one representative;
	// consistency is trivial but the denotation must partition.
	out, err := d.Denote(map[string][]trace.Item{"in": in})
	if err != nil {
		t.Fatal(err)
	}
	counts := trace.TagCounts(out["out"])
	if counts["even"] != 1 || counts["odd"] != 2 {
		t.Fatalf("partition counts %v", counts)
	}
}
