package transduction

import (
	"fmt"

	"datatrace/internal/trace"
)

// This file implements the worked examples of section 3 of the paper.
// They double as executable documentation and as fixtures for the
// consistency and monotonicity tests.

// StrictMax is Example 3.4: the input is a linearly ordered sequence
// of natural numbers (tag "n"), and the output contains the current
// item iff it is strictly larger than everything seen so far.
func StrictMax() Machine {
	return NewMachine(func() (func() []trace.Item, func(trace.Item) []trace.Item) {
		max, seen := 0, false
		start := func() []trace.Item { return nil }
		step := func(it trace.Item) []trace.Item {
			v := it.Value.(int)
			if !seen || v > max {
				max, seen = v, true
				return []trace.Item{it}
			}
			return nil
		}
		return start, step
	})
}

// MergeInputType is the two-channel input type of Example 3.7: tags I1
// and I2, each dependent only on itself (Example 3.3).
func MergeInputType() trace.Type {
	return trace.NewType("T*xT*", trace.Channels{})
}

// MergeOutputType is the single linearly ordered output channel.
func MergeOutputType() trace.Type {
	return trace.NewType("T*", trace.Linear{})
}

// DeterministicMerge is Example 3.7: reads items cyclically from the
// two input channels I1, I2 and interleaves them on the output channel
// O. The output after a prefix is x₁y₁x₂y₂… up to the shorter channel.
func DeterministicMerge() Machine {
	return NewMachine(func() (func() []trace.Item, func(trace.Item) []trace.Item) {
		var pend1, pend2 []trace.Item
		emit := func() []trace.Item {
			var out []trace.Item
			for len(pend1) > 0 && len(pend2) > 0 {
				out = append(out,
					trace.It("O", pend1[0].Value),
					trace.It("O", pend2[0].Value))
				pend1, pend2 = pend1[1:], pend2[1:]
			}
			return out
		}
		start := func() []trace.Item { return nil }
		step := func(it trace.Item) []trace.Item {
			switch it.Tag {
			case "I1":
				pend1 = append(pend1, it)
			case "I2":
				pend2 = append(pend2, it)
			default:
				panic(fmt.Sprintf("merge: unexpected tag %q", it.Tag))
			}
			return emit()
		}
		return start, step
	})
}

// PartitionByKey is Example 3.8: maps a linearly ordered input stream
// of values with keys to one linearly ordered sub-stream per key. The
// input tag is "in"; the output tag of an item is its key, so the
// output dependence (Channels) orders items per key only.
func PartitionByKey(key func(v any) trace.Tag) Machine {
	return Stateless(func(it trace.Item) []trace.Item {
		return []trace.Item{trace.It(key(it.Value), it.Value)}
	})
}

// SMaxInputType is the input type of Example 3.9: unordered numbers
// (tag "n") with linearly ordered markers "#" — i.e. Bag(Nat)⁺.
func SMaxInputType() trace.Type {
	return trace.NewType("Bag(Nat)+", trace.MarkerUnordered{Marker: "#"})
}

// SMaxOutputType is the linearly ordered output of Example 3.9.
func SMaxOutputType() trace.Type {
	return trace.NewType("Nat*", trace.Linear{})
}

// StreamingMax is Example 3.9: at every marker, emit the maximum of
// all numbers seen so far. Items between markers are unordered, and
// max is associative and commutative, so the machine is consistent.
func StreamingMax() Machine {
	return NewMachine(func() (func() []trace.Item, func(trace.Item) []trace.Item) {
		max, seen := 0, false
		start := func() []trace.Item { return nil }
		step := func(it trace.Item) []trace.Item {
			if it.Tag == "#" {
				if !seen {
					return nil
				}
				return []trace.Item{trace.It("out", max)}
			}
			if v := it.Value.(int); !seen || v > max {
				max, seen = v, true
			}
			return nil
		}
		return start, step
	})
}

// BrokenStreamingMax emits the running maximum on every item rather
// than at markers. It is NOT consistent for unordered input — the
// partial outputs depend on the arrival order — and exists so tests
// can show the consistency checker rejecting it (the paper's point
// that partial aggregates over a bag are meaningless).
func BrokenStreamingMax() Machine {
	return NewMachine(func() (func() []trace.Item, func(trace.Item) []trace.Item) {
		max, seen := 0, false
		start := func() []trace.Item { return nil }
		step := func(it trace.Item) []trace.Item {
			if it.Tag == "#" {
				return nil
			}
			if v := it.Value.(int); !seen || v > max {
				max, seen = v, true
				return []trace.Item{trace.It("out", max)}
			}
			return nil
		}
		return start, step
	})
}
