package transduction

import (
	"math/rand"
	"strings"
	"testing"

	"datatrace/internal/trace"
)

func items(vals ...int) []trace.Item {
	out := make([]trace.Item, len(vals))
	for i, v := range vals {
		out[i] = trace.It("n", v)
	}
	return out
}

func TestExample34StrictMax(t *testing.T) {
	// The paper's table: input 3 1 5 2 produces f̄ = 3 5.
	got := StrictMax().Lift(items(3, 1, 5, 2))
	want := items(3, 5)
	if !trace.Equivalent(trace.Linear{}, got, want) {
		t.Fatalf("f̄(3 1 5 2) = %s, want %s", trace.Render(got), trace.Render(want))
	}
	if out := StrictMax().Lift(nil); len(out) != 0 {
		t.Fatalf("f̄(ε) = %s, want empty", trace.Render(out))
	}
}

func TestFnLiftMatchesMachineLift(t *testing.T) {
	m := StrictMax()
	f := m.Fn()
	in := items(2, 9, 1, 9, 12, 3)
	if got, want := trace.Render(f.Lift(in)), trace.Render(m.Lift(in)); got != want {
		t.Fatalf("Fn lift %q differs from machine lift %q", got, want)
	}
}

func TestLiftIsMonotone(t *testing.T) {
	m := StrictMax()
	if err := CheckMonotone(m.Lift, trace.NewType("Nat*", trace.Linear{}), items(4, 1, 7, 7, 9)); err != nil {
		t.Fatal(err)
	}
}

func TestExample37DeterministicMerge(t *testing.T) {
	in := []trace.Item{
		trace.It("I1", "x1"), trace.It("I1", "x2"),
		trace.It("I2", "y1"), trace.It("I2", "y2"), trace.It("I2", "y3"),
	}
	got := DeterministicMerge().Lift(in)
	want := []trace.Item{
		trace.It("O", "x1"), trace.It("O", "y1"),
		trace.It("O", "x2"), trace.It("O", "y2"),
	}
	if !trace.Equivalent(trace.Linear{}, got, want) {
		t.Fatalf("merge output %s, want %s", trace.Render(got), trace.Render(want))
	}
}

func TestMergeIsConsistent(t *testing.T) {
	// The two channels are independent, so any interleaving of the
	// same per-channel contents must give the same output.
	in := []trace.Item{
		trace.It("I1", "a"), trace.It("I2", "p"), trace.It("I1", "b"),
		trace.It("I2", "q"), trace.It("I1", "c"),
	}
	if err := CheckConsistency(DeterministicMerge(), MergeInputType(), MergeOutputType(), in, 200); err != nil {
		t.Fatal(err)
	}
}

func TestExample38Partition(t *testing.T) {
	key := func(v any) trace.Tag {
		if v.(int)%2 == 0 {
			return "even"
		}
		return "odd"
	}
	m := PartitionByKey(key)
	in := items(1, 2, 3, 4, 6, 5)
	got := m.Lift(in)
	// Per-key order must be preserved.
	var evens, odds []int
	for _, it := range got {
		switch it.Tag {
		case "even":
			evens = append(evens, it.Value.(int))
		case "odd":
			odds = append(odds, it.Value.(int))
		default:
			t.Fatalf("unexpected output tag %q", it.Tag)
		}
	}
	wantE, wantO := []int{2, 4, 6}, []int{1, 3, 5}
	for i := range wantE {
		if evens[i] != wantE[i] {
			t.Fatalf("evens = %v, want %v", evens, wantE)
		}
	}
	for i := range wantO {
		if odds[i] != wantO[i] {
			t.Fatalf("odds = %v, want %v", odds, wantO)
		}
	}
}

func TestExample39StreamingMax(t *testing.T) {
	in := []trace.Item{
		trace.It("n", 3), trace.It("n", 7), trace.It("#", nil),
		trace.It("n", 5), trace.It("#", nil),
		trace.It("n", 9),
	}
	got := StreamingMax().Lift(in)
	want := []trace.Item{trace.It("out", 7), trace.It("out", 7)}
	if !trace.Equivalent(trace.Linear{}, got, want) {
		t.Fatalf("smax output %s, want %s", trace.Render(got), trace.Render(want))
	}
}

func TestStreamingMaxIsConsistent(t *testing.T) {
	in := []trace.Item{
		trace.It("n", 3), trace.It("n", 7), trace.It("n", 2), trace.It("#", nil),
		trace.It("n", 5), trace.It("n", 9), trace.It("#", nil),
	}
	if err := CheckConsistency(StreamingMax(), SMaxInputType(), SMaxOutputType(), in, 500); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	long := make([]trace.Item, 0, 60)
	for i := 0; i < 50; i++ {
		long = append(long, trace.It("n", r.Intn(100)))
		if i%7 == 6 {
			long = append(long, trace.It("#", nil))
		}
	}
	if err := CheckConsistencyRandom(StreamingMax(), SMaxInputType(), SMaxOutputType(), long, 50, r); err != nil {
		t.Fatal(err)
	}
}

func TestBrokenStreamingMaxIsInconsistent(t *testing.T) {
	in := []trace.Item{trace.It("n", 3), trace.It("n", 7), trace.It("#", nil)}
	err := CheckConsistency(BrokenStreamingMax(), SMaxInputType(), SMaxOutputType(), in, 100)
	if err == nil {
		t.Fatal("emitting partial aggregates over a bag must be flagged as inconsistent")
	}
	if !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("unexpected error text: %v", err)
	}
}

func TestComposeTypesAndSemantics(t *testing.T) {
	// partition by parity, then per-channel strict max on the evens is
	// not needed; instead compose smax after identity re-tagging to
	// exercise ≫ plumbing: numbers+markers → (smax) → linear, then a
	// stateless doubling stage.
	smax := Denote("smax", StreamingMax(), SMaxInputType(), SMaxOutputType())
	double := Denote("double", Stateless(func(it trace.Item) []trace.Item {
		return []trace.Item{trace.It("out", it.Value.(int)*2)}
	}), trace.NewType("Nat*", trace.Linear{}), trace.NewType("Nat*", trace.Linear{}))
	// Align type names for composition.
	smax.Out.Name = "Nat*"
	pipe := Compose(smax, double)
	in := []trace.Item{trace.It("n", 4), trace.It("#", nil), trace.It("n", 9), trace.It("#", nil)}
	got := pipe.Apply(in)
	want := []trace.Item{trace.It("out", 8), trace.It("out", 18)}
	if !trace.Equivalent(trace.Linear{}, got, want) {
		t.Fatalf("composed output %s, want %s", trace.Render(got), trace.Render(want))
	}
}

func TestComposeTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("composing mismatched types must panic")
		}
	}()
	a := Trace{Name: "a", Out: trace.NewType("X", trace.Linear{})}
	b := Trace{Name: "b", In: trace.NewType("Y", trace.Linear{})}
	Compose(a, b)
}

func TestParallelSplitsByTagOwnership(t *testing.T) {
	mk := func(name string, tag trace.Tag) Trace {
		tr := Denote(name, Stateless(func(it trace.Item) []trace.Item {
			return []trace.Item{trace.It(tag+"out", it.Value)}
		}), trace.NewType(string(tag), trace.Linear{}), trace.NewType(string(tag)+"out", trace.Linear{}))
		tr.OwnsTag = func(t trace.Tag) bool { return t == tag }
		return tr
	}
	par := Parallel(mk("f", "a"), mk("g", "b"))
	in := []trace.Item{trace.It("a", 1), trace.It("b", 2), trace.It("a", 3)}
	got := par.Apply(in)
	var as, bs []int
	for _, it := range got {
		switch it.Tag {
		case "aout":
			as = append(as, it.Value.(int))
		case "bout":
			bs = append(bs, it.Value.(int))
		}
	}
	if len(as) != 2 || as[0] != 1 || as[1] != 3 || len(bs) != 1 || bs[0] != 2 {
		t.Fatalf("parallel routing wrong: aout=%v bout=%v", as, bs)
	}
	if !par.OwnsTag("a") || !par.OwnsTag("b") || par.OwnsTag("c") {
		t.Fatal("combined OwnsTag wrong")
	}
}

func TestParallelProductDependence(t *testing.T) {
	f := Trace{
		Name: "f", In: trace.NewType("A", trace.Linear{}),
		Out:     trace.NewType("B", trace.Linear{}),
		Apply:   func(u []trace.Item) []trace.Item { return u },
		OwnsTag: func(t trace.Tag) bool { return t == "a" },
	}
	g := Trace{
		Name: "g", In: trace.NewType("C", trace.Linear{}),
		Out:   trace.NewType("D", trace.Linear{}),
		Apply: func(u []trace.Item) []trace.Item { return u },
	}
	par := Parallel(f, g)
	d := par.In.Dep
	if !d.Dependent("a", "a") {
		t.Error("within-component dependence must apply")
	}
	if d.Dependent("a", "c") {
		t.Error("cross-component tags must be independent")
	}
}

func TestCheckMonotoneCatchesRetraction(t *testing.T) {
	// A bogus Apply that shrinks its output is not monotone.
	bogus := func(u []trace.Item) []trace.Item {
		if len(u)%2 == 1 {
			return items(1, 2)
		}
		return items(3)
	}
	if err := CheckMonotone(bogus, trace.NewType("Nat*", trace.Linear{}), items(1, 1, 1)); err == nil {
		t.Fatal("retracting output must fail the monotonicity check")
	}
}

func TestStatelessMachineIsReusable(t *testing.T) {
	m := Stateless(func(it trace.Item) []trace.Item { return []trace.Item{it} })
	a := m.Lift(items(1, 2))
	b := m.Lift(items(3))
	if len(a) != 2 || len(b) != 1 {
		t.Fatalf("machines must be independent per run: %v %v", a, b)
	}
}
