package transduction

import (
	"fmt"

	"datatrace/internal/trace"
)

// This file implements the general transduction DAG of section 4: a
// labelled directed acyclic graph (S, N, T, E, →, λ) whose edges
// carry arbitrary data-trace types and whose processing vertices
// carry data-trace transductions respecting those types. The
// practical layer (internal/core) restricts edge types to U(K,V) and
// O(K,V); this general form also covers Kahn-network channel types,
// bags, and any other dependence relation from internal/trace, and
// gives the paper's denotational semantics verbatim: label source
// edges with the input traces, apply vertex transductions in
// topological order, read the outputs off the sink edges.

// DAGNode is a vertex of a general transduction DAG.
type DAGNode struct {
	id     int
	kind   int // 0 source, 1 processing, 2 sink
	name   string
	tr     Trace
	typ    trace.Type
	inputs []*DAGNode
}

// Name returns the vertex label.
func (n *DAGNode) Name() string { return n.name }

// Type returns the data-trace type of the vertex's outgoing edge
// (for sinks, of its incoming edge).
func (n *DAGNode) Type() trace.Type { return n.typ }

// DAG is a general transduction DAG.
type DAG struct {
	nodes []*DAGNode
	names map[string]bool
	errs  []error
}

// NewDAG creates an empty general transduction DAG.
func NewDAG() *DAG { return &DAG{names: map[string]bool{}} }

func (d *DAG) add(n *DAGNode) *DAGNode {
	if d.names[n.name] {
		d.errs = append(d.errs, fmt.Errorf("transduction: duplicate vertex %q", n.name))
	}
	d.names[n.name] = true
	n.id = len(d.nodes)
	d.nodes = append(d.nodes, n)
	return n
}

// Source adds a source vertex with the given outgoing trace type.
func (d *DAG) Source(name string, typ trace.Type) *DAGNode {
	return d.add(&DAGNode{kind: 0, name: name, typ: typ})
}

// Process adds a processing vertex applying the transduction to the
// (concatenated) traces of its inputs. When a vertex has several
// inputs, their tag alphabets must be mutually independent under the
// transduction's input type — then concatenation of representatives
// is a representative of the product trace, exactly the setting of
// Example 3.3.
func (d *DAG) Process(t Trace, inputs ...*DAGNode) *DAGNode {
	return d.add(&DAGNode{kind: 1, name: t.Name, tr: t, typ: t.Out, inputs: inputs})
}

// Sink adds a sink vertex reading one edge.
func (d *DAG) Sink(name string, input *DAGNode) *DAGNode {
	n := &DAGNode{kind: 2, name: name, inputs: []*DAGNode{input}}
	if input != nil {
		n.typ = input.typ
	}
	return d.add(n)
}

// Check validates the structure and the type labelling: every
// processing vertex's input edges must carry its transduction's input
// type (by name), sinks have exactly one input, sources none.
func (d *DAG) Check() error {
	errs := append([]error(nil), d.errs...)
	for _, n := range d.nodes {
		switch n.kind {
		case 0:
			if len(n.inputs) != 0 {
				errs = append(errs, fmt.Errorf("transduction: source %q has inputs", n.name))
			}
		case 1:
			if len(n.inputs) == 0 {
				errs = append(errs, fmt.Errorf("transduction: vertex %q has no inputs", n.name))
			}
			for _, in := range n.inputs {
				if in.kind == 2 {
					errs = append(errs, fmt.Errorf("transduction: vertex %q reads sink %q", n.name, in.name))
					continue
				}
				// Single-input vertices must match exactly; multi-input
				// vertices carry a product type whose component names we
				// do not reconstruct, so each component must be named in
				// the input type's name.
				if len(n.inputs) == 1 && in.typ.Name != n.tr.In.Name {
					errs = append(errs, fmt.Errorf("transduction: vertex %q expects input %s but edge from %q carries %s",
						n.name, n.tr.In.Name, in.name, in.typ.Name))
				}
			}
		case 2:
			if len(n.inputs) != 1 || n.inputs[0] == nil {
				errs = append(errs, fmt.Errorf("transduction: sink %q needs exactly one input", n.name))
			}
		}
	}
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// Denote computes the DAG's denotation: given a representative input
// trace per source, it labels every edge with a representative of its
// trace (topological order — vertex creation order, which Source /
// Process / Sink enforce) and returns the sink labels. This is the
// paper's section 4 semantics, executable.
func (d *DAG) Denote(inputs map[string][]trace.Item) (map[string][]trace.Item, error) {
	if err := d.Check(); err != nil {
		return nil, err
	}
	values := make(map[int][]trace.Item, len(d.nodes))
	out := map[string][]trace.Item{}
	for _, n := range d.nodes {
		switch n.kind {
		case 0:
			values[n.id] = inputs[n.name]
		case 1:
			var in []trace.Item
			for _, p := range n.inputs {
				in = trace.Concat(in, values[p.id])
			}
			values[n.id] = n.tr.Apply(in)
		case 2:
			values[n.id] = values[n.inputs[0].id]
			out[n.name] = values[n.id]
		}
	}
	return out, nil
}

// CheckDenotationConsistency verifies, on a concrete input assignment,
// that the whole DAG is ≡-respecting: permuting each source's
// representative within its trace type leaves every sink's output
// trace unchanged. limit bounds the representatives tried per source.
func (d *DAG) CheckDenotationConsistency(inputs map[string][]trace.Item, limit int) error {
	ref, err := d.Denote(inputs)
	if err != nil {
		return err
	}
	for _, src := range d.nodes {
		if src.kind != 0 {
			continue
		}
		reps := equivalentInputs(src.typ.Dep, inputs[src.name], limit)
		for _, rep := range reps[1:] {
			alt := map[string][]trace.Item{}
			for k, v := range inputs {
				alt[k] = v
			}
			alt[src.name] = rep
			got, err := d.Denote(alt)
			if err != nil {
				return err
			}
			for _, snk := range d.nodes {
				if snk.kind != 2 {
					continue
				}
				if !trace.Equivalent(snk.typ.Dep, ref[snk.name], got[snk.name]) {
					return fmt.Errorf("transduction: DAG not ≡-respecting: permuting source %q changed sink %q:\n  %s\n  %s",
						src.name, snk.name, trace.Render(ref[snk.name]), trace.Render(got[snk.name]))
				}
			}
		}
	}
	return nil
}
