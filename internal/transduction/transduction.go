// Package transduction implements data-string transductions and
// data-trace transductions from sections 3.2–3.3 of the PLDI 2019
// paper "Data-Trace Types for Distributed Stream Processing Systems".
//
// A data-string transduction f : A* → B* is the one-step description
// of a sequential streaming computation: f(u) is the output emitted
// right after consuming the last item of u, and f(ε) the output
// emitted before any input. Its lifting f̄ accumulates the one-step
// outputs over every prefix and is monotone w.r.t. the prefix order.
//
// A data-string transduction f is (X,Y)-consistent when equivalent
// input sequences produce equivalent cumulative outputs (Definition
// 3.5); a consistent f denotes a data-trace transduction β : X → Y
// with β([u]) = [f̄(u)]. This package provides both the pure
// mathematical form (functions of the whole prefix) and an efficient
// stateful form (streaming steppers), consistency checking by
// exhaustive and randomized permutation of inputs, and the streaming
// (≫) and parallel (∥) composition combinators used by Theorem 4.3.
package transduction

import (
	"fmt"
	"math/rand"

	"datatrace/internal/trace"
)

// Fn is a data-string transduction in its mathematical form: a pure
// function of the entire input prefix returning the one-step output
// triggered by the prefix's last item (or the initial output when the
// prefix is empty).
type Fn func(u []trace.Item) []trace.Item

// Lift computes the lifting f̄(u) = f(ε)·f(a₁)·f(a₁a₂)···f(u): the
// cumulative output after consuming u item by item.
func (f Fn) Lift(u []trace.Item) []trace.Item {
	var out []trace.Item
	for i := 0; i <= len(u); i++ {
		out = append(out, f(u[:i])...)
	}
	return out
}

// Stepper is the operational form of a data-string transduction: a
// state machine consumed one item at a time. A Stepper is single-use;
// obtain fresh ones from a Machine.
type Stepper interface {
	// Start returns f(ε), the output emitted before any input.
	Start() []trace.Item
	// Step consumes one input item and returns the output it triggers.
	Step(it trace.Item) []trace.Item
}

// Machine creates fresh Steppers, so a single definition can be run
// on many inputs (and on many permutations of one input, as the
// consistency checker does).
type Machine func() Stepper

// Lift runs a fresh stepper over u and returns the cumulative output
// f̄(u).
func (m Machine) Lift(u []trace.Item) []trace.Item {
	s := m()
	out := append([]trace.Item(nil), s.Start()...)
	for _, it := range u {
		out = append(out, s.Step(it)...)
	}
	return out
}

// Fn converts the machine to the mathematical form. The conversion
// replays the whole prefix on a fresh stepper for every call, so it is
// quadratic when lifted; it exists for spec-level reasoning and tests.
func (m Machine) Fn() Fn {
	return func(u []trace.Item) []trace.Item {
		s := m()
		if len(u) == 0 {
			return s.Start()
		}
		s.Start()
		var out []trace.Item
		for i, it := range u {
			out = s.Step(it)
			_ = i
		}
		return out
	}
}

// funcStepper adapts a step function plus per-run state into a Stepper.
type funcStepper struct {
	start func() []trace.Item
	step  func(trace.Item) []trace.Item
}

func (s *funcStepper) Start() []trace.Item { return s.start() }

func (s *funcStepper) Step(it trace.Item) []trace.Item { return s.step(it) }

// NewMachine builds a Machine from a constructor that returns the
// start and step functions sharing freshly initialized state.
func NewMachine(construct func() (start func() []trace.Item, step func(trace.Item) []trace.Item)) Machine {
	return func() Stepper {
		start, step := construct()
		return &funcStepper{start: start, step: step}
	}
}

// Stateless builds a Machine whose output depends only on the current
// item — the degenerate case used by map/filter stages.
func Stateless(step func(trace.Item) []trace.Item) Machine {
	return NewMachine(func() (func() []trace.Item, func(trace.Item) []trace.Item) {
		return func() []trace.Item { return nil }, step
	})
}

// Trace is a data-trace transduction β : X → Y given operationally:
// Apply maps a representative of an input trace to a representative of
// the output trace β([u]). Apply must be well-defined on traces, i.e.
// come from an (X,Y)-consistent string transduction; Denote constructs
// such a Trace from a Machine.
type Trace struct {
	// Name describes the transduction, for error messages and DOT dumps.
	Name string
	// In and Out are the input and output data-trace types.
	In, Out trace.Type
	// Apply computes a representative of the output trace.
	Apply func(u []trace.Item) []trace.Item
	// OwnsTag reports whether an input tag belongs to this
	// transduction's input alphabet; it is consulted by Parallel to
	// split a combined input among components. May be nil for
	// transductions never used under ∥.
	OwnsTag func(t trace.Tag) bool
}

// Denote builds the (X,Y)-denotation of the machine: the data-trace
// transduction [u] ↦ [f̄(u)]. The machine must be (X,Y)-consistent for
// the result to be well-defined; CheckConsistency can test that.
func Denote(name string, m Machine, in, out trace.Type) Trace {
	return Trace{
		Name:  name,
		In:    in,
		Out:   out,
		Apply: m.Lift,
	}
}

// Compose is streaming composition f ≫ g: the output trace of f is
// fed as the input trace of g. It requires f.Out and g.In to be the
// same type (by name) and panics otherwise, mirroring the typing rule.
func Compose(f, g Trace) Trace {
	if f.Out.Name != g.In.Name {
		panic(fmt.Sprintf("transduction: cannot compose %s : ... → %s with %s : %s → ...",
			f.Name, f.Out.Name, g.Name, g.In.Name))
	}
	return Trace{
		Name:    f.Name + " >> " + g.Name,
		In:      f.In,
		Out:     g.Out,
		OwnsTag: f.OwnsTag,
		Apply: func(u []trace.Item) []trace.Item {
			return g.Apply(f.Apply(u))
		},
	}
}

// Parallel is parallel composition f ∥ g: the combined input trace is
// split by tag ownership, each component transforms its own part, and
// the outputs are concatenated. The components' input and output tag
// alphabets must be disjoint (their items independent across
// components) for this to be a transduction on the product type; the
// caller is responsible for choosing such types, as in Example 3.3.
func Parallel(f, g Trace) Trace {
	if f.OwnsTag == nil {
		panic("transduction: Parallel requires f.OwnsTag")
	}
	return Trace{
		Name: f.Name + " || " + g.Name,
		In:   trace.NewType(f.In.Name+" x "+g.In.Name, productDep(f.In.Dep, g.In.Dep, f.OwnsTag)),
		Out:  trace.NewType(f.Out.Name+" x "+g.Out.Name, nil),
		OwnsTag: func(t trace.Tag) bool {
			return f.OwnsTag(t) || (g.OwnsTag != nil && g.OwnsTag(t))
		},
		Apply: func(u []trace.Item) []trace.Item {
			var fu, gu []trace.Item
			for _, it := range u {
				if f.OwnsTag(it.Tag) {
					fu = append(fu, it)
				} else {
					gu = append(gu, it)
				}
			}
			return trace.Concat(f.Apply(fu), g.Apply(gu))
		},
	}
}

// productDep forms the dependence relation of a product type: within
// each component the component's relation applies; across components
// everything is independent.
func productDep(df, dg trace.Dependence, ownsF func(trace.Tag) bool) trace.Dependence {
	return trace.Func(func(a, b trace.Tag) bool {
		fa, fb := ownsF(a), ownsF(b)
		switch {
		case fa && fb:
			return df.Dependent(a, b)
		case !fa && !fb:
			return dg.Dependent(a, b)
		default:
			return false
		}
	})
}

// equivalentInputs enumerates representatives of [u] by BFS over
// adjacent independent swaps, up to the given limit.
func equivalentInputs(d trace.Dependence, u []trace.Item, limit int) [][]trace.Item {
	seen := map[string][]trace.Item{trace.Render(u): u}
	queue := [][]trace.Item{u}
	out := [][]trace.Item{u}
	for len(queue) > 0 && len(out) < limit {
		cur := queue[0]
		queue = queue[1:]
		for i := 0; i+1 < len(cur); i++ {
			if d.Dependent(cur[i].Tag, cur[i+1].Tag) {
				continue
			}
			next := make([]trace.Item, len(cur))
			copy(next, cur)
			next[i], next[i+1] = next[i+1], next[i]
			k := trace.Render(next)
			if _, ok := seen[k]; !ok {
				seen[k] = next
				queue = append(queue, next)
				out = append(out, next)
				if len(out) >= limit {
					break
				}
			}
		}
	}
	return out
}

// CheckConsistency tests Definition 3.5 on a concrete input: it runs
// the machine on up to limit representatives of [u] and reports an
// error naming the first pair of equivalent inputs whose cumulative
// outputs are not equivalent under out.Dep. A nil return means no
// violation was found (it is evidence, not proof, of consistency).
func CheckConsistency(m Machine, in, out trace.Type, u []trace.Item, limit int) error {
	reps := equivalentInputs(in.Dep, u, limit)
	ref := m.Lift(reps[0])
	for _, v := range reps[1:] {
		got := m.Lift(v)
		if !trace.Equivalent(out.Dep, ref, got) {
			return fmt.Errorf("inconsistent: inputs %q and %q are ≡ under %s but outputs %q and %q are not ≡ under %s",
				trace.Render(reps[0]), trace.Render(v), in.Name,
				trace.Render(ref), trace.Render(got), out.Name)
		}
	}
	return nil
}

// CheckConsistencyRandom is a randomized variant for longer inputs: it
// performs trials random walks of adjacent independent swaps starting
// from u and compares outputs against the original.
func CheckConsistencyRandom(m Machine, in, out trace.Type, u []trace.Item, trials int, r *rand.Rand) error {
	ref := m.Lift(u)
	for t := 0; t < trials; t++ {
		v := make([]trace.Item, len(u))
		copy(v, u)
		for s := 0; s < 4*len(v); s++ {
			if len(v) < 2 {
				break
			}
			i := r.Intn(len(v) - 1)
			if !in.Dep.Dependent(v[i].Tag, v[i+1].Tag) {
				v[i], v[i+1] = v[i+1], v[i]
			}
		}
		got := m.Lift(v)
		if !trace.Equivalent(out.Dep, ref, got) {
			return fmt.Errorf("inconsistent: permuted input %q gives output %q, not ≡ to reference %q under %s",
				trace.Render(v), trace.Render(got), trace.Render(ref), out.Name)
		}
	}
	return nil
}

// CheckMonotone verifies that the lifting of m is monotone on a chain
// of prefixes of u: f̄(u[:i]) must be a trace prefix of f̄(u[:j]) for
// i ≤ j. Liftings are monotone by construction; this guards custom
// Trace.Apply implementations.
func CheckMonotone(apply func([]trace.Item) []trace.Item, out trace.Type, u []trace.Item) error {
	prev := apply(nil)
	for i := 1; i <= len(u); i++ {
		cur := apply(u[:i])
		if !trace.PrefixOf(out.Dep, prev, cur) {
			return fmt.Errorf("not monotone at prefix length %d: %q is not a trace prefix of %q",
				i, trace.Render(prev), trace.Render(cur))
		}
		prev = cur
	}
	return nil
}
