package iot

import (
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// This file implements the other "practical fix" section 2 discusses:
// instead of typed markers and partial orders, attach sequence
// numbers to stream elements at the source and re-sort downstream to
// recover the order the parallel Map stage destroyed. The paper
// argues this (a) increases the size of data items, (b) imposes a
// total order even where a partial order suffices, and (c) makes
// programs harder to maintain. RunSeqnum makes the approach concrete
// so the overhead argument can be measured (see
// BenchmarkSection2Seqnum vs BenchmarkSection2Typed at the repo
// root): every item grows by a sequence number, and the re-ordering
// stage buffers and releases a strictly sequential prefix — a global
// serialization point the typed pipeline does not have.

// Sequenced wraps a value with the source-assigned sequence number.
type Sequenced struct {
	N int64
	V any
}

// seqnumSpout wraps a source, numbering every event (items and
// markers share one counter so downstream can release a contiguous
// prefix).
func seqnumSpout(events []stream.Event) storm.SpoutFunc {
	i := 0
	n := int64(0)
	return func() (stream.Event, bool) {
		if i >= len(events) {
			return stream.Event{}, false
		}
		e := events[i]
		i++
		if e.IsMarker {
			// Markers carry their own order; number them too so the
			// re-sorter can release them in place.
			e = stream.Item(stream.Unit{}, Sequenced{N: n, V: e})
		} else {
			e = stream.Item(e.Key, Sequenced{N: n, V: e.Value})
		}
		n++
		return e, true
	}
}

// resequencer buffers out-of-order Sequenced items and releases the
// contiguous prefix, restoring the exact source order — the classic
// hand-rolled fix. It must see every sequence number exactly once.
type resequencer struct {
	next    int64
	pending map[int64]stream.Event
	deliver func(e stream.Event, emit func(stream.Event))
}

func newResequencer(deliver func(e stream.Event, emit func(stream.Event))) *resequencer {
	return &resequencer{pending: map[int64]stream.Event{}, deliver: deliver}
}

// Next implements storm.Bolt.
func (r *resequencer) Next(e stream.Event, emit func(stream.Event)) {
	sq := e.Value.(Sequenced)
	// Unwrap: the payload is either an embedded marker event or the
	// original item value.
	var orig stream.Event
	if m, ok := sq.V.(stream.Event); ok && m.IsMarker {
		orig = m
	} else {
		orig = stream.Item(e.Key, sq.V)
	}
	r.pending[sq.N] = orig
	for {
		ev, ok := r.pending[r.next]
		if !ok {
			return
		}
		delete(r.pending, r.next)
		r.next++
		r.deliver(ev, emit)
	}
}

// RunSeqnum deploys the section 2 pipeline with the sequence-number
// fix: the source numbers every event, Map runs at mapPar behind a
// raw shuffle (numbers travel with the items), and a single
// re-sequencing stage restores source order before LI and MaxOfAvg.
// The output is correct — equivalent to the specification — but the
// resequencer is a mandatory serial stage and every item carries the
// extra number.
func RunSeqnum(cfg SensorConfig, mapPar int) (*storm.Result, error) {
	events := Stream(cfg)
	top := storm.NewTopology("seqnum")
	top.AddSpout("hub", 1, func(int) storm.Spout { return seqnumSpout(events) })
	top.AddBolt("map", mapPar, func(int) storm.Bolt {
		op := JFMOp(cfg).New()
		return storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) {
			sq := e.Value.(Sequenced)
			if m, ok := sq.V.(stream.Event); ok && m.IsMarker {
				// Pass the numbered marker through untouched.
				emit(e)
				return
			}
			// Run JFM on the payload; re-wrap any output with the
			// item's sequence number (JFM emits ≤1 item per input).
			produced := false
			op.Next(stream.Item(e.Key, sq.V), func(out stream.Event) {
				produced = true
				emit(stream.Item(out.Key, Sequenced{N: sq.N, V: out.Value}))
			})
			if !produced {
				// Dropped items leave a hole in the numbering; fill it
				// with an explicit skip so the resequencer can advance.
				emit(stream.Item(e.Key, Sequenced{N: sq.N, V: skip{}}))
			}
		})
	}).ShuffleGrouping("hub", false)
	top.AddBolt("reseq-li", 1, func(int) storm.Bolt {
		li := LIOp().New()
		return newResequencer(func(ev stream.Event, emit func(stream.Event)) {
			if !ev.IsMarker {
				if _, isSkip := ev.Value.(skip); isSkip {
					return
				}
			}
			li.Next(ev, emit)
		})
	}).GlobalGrouping("map", false)
	top.AddBolt("max", 1, func(int) storm.Bolt {
		op := MaxOfAvgOp().New()
		return storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) { op.Next(e, emit) })
	}).GlobalGrouping("reseq-li", false)
	top.AddSink("sink", "max")
	return top.Run()
}

// skip is the hole-filling payload for items the Map stage dropped.
type skip struct{}
