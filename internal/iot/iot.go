// Package iot implements the paper's running IoT example: the sensor
// pre-processing pipeline of section 2 and Example 4.1 / Figure 1,
// with the three Table 2 operators (joinFilterMap,
// linearInterpolation, maxOfAvgPerID) written against the core
// templates.
//
// It also reproduces the section 2 motivation experiment: naively
// data-parallelizing the Map stage on the raw runtime (what Storm's
// shuffle grouping does) breaks the order-sensitive interpolation
// stage, while the same parallelization requested through the typed
// framework either is rejected by the type checker (U flowing into an
// order-requiring operator) or — with SORT inserted — preserves the
// semantics at any parallelism.
package iot

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"datatrace/internal/compile"
	"datatrace/internal/core"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// V is a timestamped scalar (the paper's V = {scalar, ts}).
type V struct {
	Scalar float64
	TS     int64
}

// SensorConfig parameterizes the simulated home-IoT hub of Example
// 4.1.
type SensorConfig struct {
	// Sensors is the number of temperature sensors; ids 0..Sensors-1.
	Sensors int
	// WindowSensors lists which sensor ids are near windows (the JFM
	// stage keeps only those). Nil keeps even ids.
	WindowSensors map[int]bool
	// Seconds is the stream's event-time length.
	Seconds int
	// MarkerPeriod is the watermark interval (paper: 10 seconds).
	MarkerPeriod int
	// GapProb drops measurements, creating the gaps LI must fill.
	GapProb float64
	// Seed drives the generator.
	Seed int64
}

// DefaultSensorConfig is a small default deployment.
func DefaultSensorConfig() SensorConfig {
	return SensorConfig{Sensors: 4, Seconds: 60, MarkerPeriod: 10, GapProb: 0.25, Seed: 1}
}

// nearWindow reports whether the sensor is near a window.
func (c SensorConfig) nearWindow(id int) bool {
	if c.WindowSensors != nil {
		return c.WindowSensors[id]
	}
	return id%2 == 0
}

// Stream generates the hub's serialized measurement stream: items are
// raw "id,scalar,ts" strings of type U(Ut,Raw), in increasing
// timestamp order per sensor, with markers every MarkerPeriod seconds
// honouring the watermark guarantee.
func Stream(cfg SensorConfig) []stream.Event {
	r := rand.New(rand.NewSource(cfg.Seed))
	var out []stream.Event
	seq := int64(0)
	for blockStart := 0; blockStart < cfg.Seconds; blockStart += cfg.MarkerPeriod {
		blockEnd := blockStart + cfg.MarkerPeriod
		if blockEnd > cfg.Seconds {
			blockEnd = cfg.Seconds
		}
		for ts := blockStart; ts < blockEnd; ts++ {
			for id := 0; id < cfg.Sensors; id++ {
				if r.Float64() < cfg.GapProb {
					continue
				}
				temp := 20 + 3*float64(id) + r.Float64()
				out = append(out, stream.Item(stream.Unit{},
					fmt.Sprintf("%d,%.3f,%d", id, temp, ts)))
			}
		}
		out = append(out, stream.Mark(stream.Marker{Seq: seq, Timestamp: int64(blockEnd)}))
		seq++
	}
	return out
}

// ParseMeasurement deserializes one raw hub message.
func ParseMeasurement(raw string) (id int, v V, err error) {
	parts := strings.Split(raw, ",")
	if len(parts) != 3 {
		return 0, V{}, fmt.Errorf("iot: malformed message %q", raw)
	}
	id, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, V{}, fmt.Errorf("iot: bad id in %q: %v", raw, err)
	}
	v.Scalar, err = strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return 0, V{}, fmt.Errorf("iot: bad scalar in %q: %v", raw, err)
	}
	v.TS, err = strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return 0, V{}, fmt.Errorf("iot: bad ts in %q: %v", raw, err)
	}
	return id, v, nil
}

// JFMOp is Table 2's joinFilterMap: deserialize, keep window sensors,
// key by sensor id. U(Ut,Raw) → U(ID,V).
func JFMOp(cfg SensorConfig) core.Operator {
	return &core.Stateless[stream.Unit, string, int, V]{
		OpName: "JFM",
		In:     stream.U("Ut", "Raw"),
		Out:    stream.U("ID", "V"),
		OnItem: func(emit core.Emit[int, V], _ stream.Unit, raw string) {
			id, v, err := ParseMeasurement(raw)
			if err != nil {
				return // drop malformed messages
			}
			if cfg.nearWindow(id) {
				emit(id, v)
			}
		},
	}
}

// SortOp is the SORT stage: U(ID,V) → O(ID,V), per sensor by
// timestamp (ties by scalar for determinism).
func SortOp() core.Operator {
	return &core.Sort[int, V]{
		OpName: "SORT",
		In:     stream.U("ID", "V"),
		Out:    stream.O("ID", "V"),
		Less: func(a, b V) bool {
			if a.TS != b.TS {
				return a.TS < b.TS
			}
			return a.Scalar < b.Scalar
		},
	}
}

// LIOp is Table 2's linearInterpolation: per sensor, fill missing
// per-second points. O(ID,V) → O(ID,V).
func LIOp() core.Operator {
	return &core.KeyedOrdered[int, V, V, *V]{
		OpName:       "LI",
		In:           stream.O("ID", "V"),
		Out:          stream.O("ID", "V"),
		InitialState: func() *V { return nil },
		OnItem: func(emit func(V), st *V, _ int, v V) *V {
			if st == nil {
				emit(v)
				return &v
			}
			dt := v.TS - st.TS
			if dt <= 0 {
				return &v
			}
			x := st.Scalar
			for i := int64(1); i <= dt; i++ {
				y := x + float64(i)*(v.Scalar-x)/float64(dt)
				emit(V{Scalar: y, TS: st.TS + i})
			}
			return &v
		},
	}
}

// avgPair is Table 2's AvgPair monoid element.
type avgPair struct {
	Sum   float64
	Count int64
}

// MaxOfAvgOp is Table 2's maxOfAvgPerID: per sensor, the running
// maximum over the per-block averages, emitted at every marker.
// U(ID,V) → U(ID,V).
func MaxOfAvgOp() core.Operator {
	negInf := -1e308
	return &core.KeyedUnordered[int, V, int, V, float64, avgPair]{
		OpName: "MaxOfAvg",
		InT:    stream.U("ID", "V"),
		OutT:   stream.U("ID", "V"),
		In:     func(_ int, v V) avgPair { return avgPair{Sum: v.Scalar, Count: 1} },
		ID:     func() avgPair { return avgPair{} },
		Combine: func(x, y avgPair) avgPair {
			return avgPair{Sum: x.Sum + y.Sum, Count: x.Count + y.Count}
		},
		InitialState: func() float64 { return negInf },
		UpdateState: func(old float64, agg avgPair) float64 {
			if agg.Count == 0 {
				return old
			}
			if avg := agg.Sum / float64(agg.Count); avg > old {
				return avg
			}
			return old
		},
		OnMarker: func(emit core.Emit[int, V], st float64, id int, m stream.Marker) {
			if st == negInf {
				return
			}
			emit(id, V{Scalar: st, TS: m.Timestamp - 1})
		},
	}
}

// PipelineDAG is the typed pipeline of Example 4.1 extended with the
// Table 2 aggregation stage: HUB → JFM → SORT → LI → MaxOfAvg → SINK.
func PipelineDAG(cfg SensorConfig, par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("hub", stream.U("Ut", "Raw"))
	jfm := d.Op(JFMOp(cfg), par, src)
	srt := d.Op(SortOp(), par, jfm)
	li := d.Op(LIOp(), par, srt)
	max := d.Op(MaxOfAvgOp(), par, li)
	d.Sink("sink", max)
	return d
}

// IllTypedDAG is the section 2 pipeline WITHOUT the sort: the
// unordered JFM output flows straight into the order-requiring LI.
// Its Check() must fail — the framework rejects at compile time the
// very deployment that naive parallelization silently corrupts.
func IllTypedDAG(cfg SensorConfig, par int) *core.DAG {
	d := core.NewDAG()
	src := d.Source("hub", stream.U("Ut", "Raw"))
	jfm := d.Op(JFMOp(cfg), par, src)
	li := d.Op(LIOp(), par, jfm)
	d.Sink("sink", li)
	return d
}

// Reference evaluates the typed pipeline sequentially.
func Reference(cfg SensorConfig) (map[string][]stream.Event, error) {
	return PipelineDAG(cfg, 1).Eval(map[string][]stream.Event{"hub": Stream(cfg)})
}

// RunTyped compiles and runs the typed pipeline at the given
// parallelism on the storm runtime.
func RunTyped(cfg SensorConfig, par int) (*storm.Result, error) {
	events := Stream(cfg)
	top, err := compile.Compile(PipelineDAG(cfg, par), map[string]compile.SourceSpec{
		"hub": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(events) }},
	}, nil)
	if err != nil {
		return nil, err
	}
	return top.Run()
}

// RunNaive builds the section 2 deployment by hand: the Map stage is
// replicated behind a raw shuffle grouping (exactly what Storm does
// when given a parallelism hint) and LI consumes the merged stream
// as-is, with no sorting and no marker alignment. The result is a
// stream whose interleaving — and therefore whose interpolated values
// and marker structure — differs from the specification.
func RunNaive(cfg SensorConfig, mapPar int) (*storm.Result, error) {
	events := Stream(cfg)
	top := storm.NewTopology("naive")
	top.AddSpout("hub", 1, func(int) storm.Spout { return storm.SliceSpout(events) })
	top.AddBolt("map", mapPar, func(int) storm.Bolt {
		op := JFMOp(cfg).New()
		return storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) { op.Next(e, emit) })
	}).ShuffleGrouping("hub", false)
	top.AddBolt("li", 1, func(int) storm.Bolt {
		op := LIOp().New()
		return storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) { op.Next(e, emit) })
	}).GlobalGrouping("map", false)
	top.AddBolt("max", 1, func(int) storm.Bolt {
		op := MaxOfAvgOp().New()
		return storm.BoltFunc(func(e stream.Event, emit func(stream.Event)) { op.Next(e, emit) })
	}).GlobalGrouping("li", false)
	top.AddSink("sink", "max")
	return top.Run()
}

// SinkType is the typed pipeline's output type.
func SinkType() stream.Type { return stream.U("ID", "V") }
