package iot

import (
	"strings"
	"testing"

	"datatrace/internal/stream"
)

func TestStreamShape(t *testing.T) {
	cfg := DefaultSensorConfig()
	events := Stream(cfg)
	markers := 0
	lastTS := int64(-1)
	watermark := int64(0)
	for _, e := range events {
		if e.IsMarker {
			markers++
			watermark = e.Marker.Timestamp
			continue
		}
		_, v, err := ParseMeasurement(e.Value.(string))
		if err != nil {
			t.Fatal(err)
		}
		if v.TS < watermark {
			t.Fatalf("measurement at ts %d after watermark %d", v.TS, watermark)
		}
		if v.TS < lastTS {
			// The hub emits in globally increasing timestamp order in
			// this generator (sensors interleaved per second).
			t.Fatalf("timestamps not monotone: %d after %d", v.TS, lastTS)
		}
		lastTS = v.TS
	}
	if markers != cfg.Seconds/cfg.MarkerPeriod {
		t.Fatalf("markers = %d, want %d", markers, cfg.Seconds/cfg.MarkerPeriod)
	}
}

func TestParseMeasurement(t *testing.T) {
	id, v, err := ParseMeasurement("3,21.500,47")
	if err != nil || id != 3 || v.Scalar != 21.5 || v.TS != 47 {
		t.Fatalf("got %d %+v %v", id, v, err)
	}
	for _, bad := range []string{"", "1,2", "x,2.0,3", "1,x,3", "1,2.0,x"} {
		if _, _, err := ParseMeasurement(bad); err == nil {
			t.Fatalf("%q must fail to parse", bad)
		}
	}
}

func TestTypedPipelineTypeChecks(t *testing.T) {
	cfg := DefaultSensorConfig()
	if err := PipelineDAG(cfg, 2).Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSection2TypeCheckerRejectsNaivePipeline: the framework refuses
// the pipeline that feeds the unordered Map output into the
// order-requiring LI — the static counterpart of the runtime
// corruption RunNaive exhibits.
func TestSection2TypeCheckerRejectsNaivePipeline(t *testing.T) {
	err := IllTypedDAG(DefaultSensorConfig(), 2).Check()
	if err == nil {
		t.Fatal("ill-typed pipeline must be rejected")
	}
	if !strings.Contains(err.Error(), "expects input O(ID,V)") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestSection2NaiveDeploymentBreaksSemantics: the hand-parallelized
// deployment produces a different output trace than the
// specification.
func TestSection2NaiveDeploymentBreaksSemantics(t *testing.T) {
	cfg := DefaultSensorConfig()
	ref, err := Reference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNaive(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Equivalent(SinkType(), res.Sinks["sink"], ref["sink"]) {
		t.Fatal("naive parallelization unexpectedly preserved the output trace")
	}
	// The structural symptom: duplicated markers (each Map replica
	// forwards every marker) make the sink see more markers per block.
	refMarkers, naiveMarkers := 0, 0
	for _, e := range ref["sink"] {
		if e.IsMarker {
			refMarkers++
		}
	}
	for _, e := range res.Sinks["sink"] {
		if e.IsMarker {
			naiveMarkers++
		}
	}
	if naiveMarkers <= refMarkers {
		t.Fatalf("expected marker duplication: naive %d vs reference %d", naiveMarkers, refMarkers)
	}
}

// TestSection2TypedDeploymentPreservesSemantics: the same
// parallelization requested through the typed framework (with SORT
// making the reordering explicit) is equivalent to the specification
// at every parallelism.
func TestSection2TypedDeploymentPreservesSemantics(t *testing.T) {
	cfg := DefaultSensorConfig()
	ref, err := Reference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 4} {
		res, err := RunTyped(cfg, par)
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		if !stream.Equivalent(SinkType(), res.Sinks["sink"], ref["sink"]) {
			t.Fatalf("par %d: typed deployment changed the output trace", par)
		}
	}
}

func TestMaxOfAvgSemantics(t *testing.T) {
	op := MaxOfAvgOp()
	inst := op.New()
	var out []stream.Event
	emit := func(e stream.Event) { out = append(out, e) }
	// Block 0: avg(10,20) = 15. Block 1: avg(4) = 4 (max stays 15).
	inst.Next(stream.Item(1, V{Scalar: 10, TS: 0}), emit)
	inst.Next(stream.Item(1, V{Scalar: 20, TS: 1}), emit)
	inst.Next(stream.Mark(stream.Marker{Seq: 0, Timestamp: 10}), emit)
	inst.Next(stream.Item(1, V{Scalar: 4, TS: 11}), emit)
	inst.Next(stream.Mark(stream.Marker{Seq: 1, Timestamp: 20}), emit)
	var vals []float64
	for _, e := range out {
		if !e.IsMarker {
			vals = append(vals, e.Value.(V).Scalar)
		}
	}
	if len(vals) != 2 || vals[0] != 15 || vals[1] != 15 {
		t.Fatalf("max-of-avg emissions = %v, want [15 15]", vals)
	}
}

func TestJFMFiltersNonWindowSensors(t *testing.T) {
	cfg := DefaultSensorConfig()
	ref, err := Reference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ref["sink"] {
		if e.IsMarker {
			continue
		}
		if id := e.Key.(int); !cfg.nearWindow(id) {
			t.Fatalf("non-window sensor %d leaked through", id)
		}
	}
}

// TestSeqnumFixIsCorrectButSerial: the sequence-number practical fix
// recovers the specification's output exactly, at the cost of a
// mandatory serial re-sequencing stage.
func TestSeqnumFixIsCorrectButSerial(t *testing.T) {
	cfg := DefaultSensorConfig()
	ref, err := Reference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 4} {
		res, err := RunSeqnum(cfg, par)
		if err != nil {
			t.Fatalf("par %d: %v", par, err)
		}
		if !stream.Equivalent(SinkType(), res.Sinks["sink"], ref["sink"]) {
			t.Fatalf("par %d: seqnum pipeline output differs from the specification", par)
		}
	}
}

func TestResequencerReordersContiguously(t *testing.T) {
	var got []int
	r := newResequencer(func(e stream.Event, emit func(stream.Event)) {
		got = append(got, e.Value.(int))
	})
	emitNothing := func(stream.Event) {}
	feed := func(n int64, v int) {
		r.Next(stream.Item(stream.Unit{}, Sequenced{N: n, V: v}), emitNothing)
	}
	feed(2, 20)
	feed(0, 0)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("after 2,0: got %v", got)
	}
	feed(1, 10)
	if len(got) != 3 || got[1] != 10 || got[2] != 20 {
		t.Fatalf("after 1: got %v", got)
	}
}
