package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// stepData is piecewise-constant data a regression tree should fit
// exactly: y = 1 if x0 <= 5 else 9.
func stepData(n int, r *rand.Rand) Dataset {
	var d Dataset
	for i := 0; i < n; i++ {
		x := r.Float64() * 10
		y := 1.0
		if x > 5 {
			y = 9.0
		}
		d.Append([]float64{x}, y)
	}
	return d
}

func TestREPTreeFitsStepFunction(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tree, err := TrainREPTree(stepData(400, r), DefaultREPTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{1}); math.Abs(got-1) > 0.5 {
		t.Fatalf("Predict(1) = %v, want ≈1", got)
	}
	if got := tree.Predict([]float64{9}); math.Abs(got-9) > 0.5 {
		t.Fatalf("Predict(9) = %v, want ≈9", got)
	}
}

func TestREPTreeMultiFeature(t *testing.T) {
	// y = 10*[x0>0.5] + [x1>0.5]; the tree should recover both splits.
	r := rand.New(rand.NewSource(4))
	var d Dataset
	for i := 0; i < 2000; i++ {
		x0, x1 := r.Float64(), r.Float64()
		y := 0.0
		if x0 > 0.5 {
			y += 10
		}
		if x1 > 0.5 {
			y++
		}
		d.Append([]float64{x0, x1}, y)
	}
	tree, err := TrainREPTree(d, DefaultREPTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mse := tree.MSE(d); mse > 0.5 {
		t.Fatalf("training MSE = %v, want < 0.5", mse)
	}
	if tree.Depth() < 2 {
		t.Fatalf("depth = %d, want ≥ 2 (both features used)", tree.Depth())
	}
}

func TestREPTreePruningShrinksTree(t *testing.T) {
	// Pure-noise labels: an unpruned tree overfits; REP pruning should
	// collapse (most of) it.
	r := rand.New(rand.NewSource(5))
	var d Dataset
	for i := 0; i < 500; i++ {
		d.Append([]float64{r.Float64()}, r.NormFloat64())
	}
	unpruned, err := TrainREPTree(d, REPTreeConfig{MaxDepth: -1, MinInstances: 2, PruneFraction: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := TrainREPTree(d, REPTreeConfig{MaxDepth: -1, MinInstances: 2, PruneFraction: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Leaves() >= unpruned.Leaves() {
		t.Fatalf("pruning did not shrink the tree: %d vs %d leaves", pruned.Leaves(), unpruned.Leaves())
	}
}

func TestREPTreePredictionsWithinLabelRange(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(6))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var d Dataset
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50; i++ {
			y := r.Float64()*100 - 50
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
			d.Append([]float64{r.Float64(), r.Float64()}, y)
		}
		tree, err := TrainREPTree(d, DefaultREPTreeConfig())
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			p := tree.Predict([]float64{r.Float64(), r.Float64()})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestREPTreeErrors(t *testing.T) {
	if _, err := TrainREPTree(Dataset{}, DefaultREPTreeConfig()); err == nil {
		t.Fatal("empty dataset must fail")
	}
	d := Dataset{X: [][]float64{{1}, {1, 2}}, Y: []float64{1, 2}}
	if _, err := TrainREPTree(d, DefaultREPTreeConfig()); err == nil {
		t.Fatal("ragged features must fail")
	}
}

func TestREPTreeMaxDepth(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tree, err := TrainREPTree(stepData(300, r), REPTreeConfig{MaxDepth: 1, MinInstances: 2, PruneFraction: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 1 {
		t.Fatalf("depth = %d, want ≤ 1", tree.Depth())
	}
}

func TestREPTreeDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	d := stepData(200, r)
	t1, _ := TrainREPTree(d, DefaultREPTreeConfig())
	t2, _ := TrainREPTree(d, DefaultREPTreeConfig())
	for i := 0; i < 20; i++ {
		x := []float64{float64(i) / 2}
		if t1.Predict(x) != t2.Predict(x) {
			t.Fatal("training is not deterministic for a fixed seed")
		}
	}
}

// --- k-means ---------------------------------------------------------------

// threeBlobs generates three well-separated Gaussian clusters.
func threeBlobs(n int, r *rand.Rand) ([][]float64, []int) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	var pts [][]float64
	var labels []int
	for i := 0; i < n; i++ {
		c := i % 3
		pts = append(pts, []float64{
			centers[c][0] + r.NormFloat64(),
			centers[c][1] + r.NormFloat64(),
		})
		labels = append(labels, c)
	}
	return pts, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	pts, labels := threeBlobs(300, r)
	res, err := KMeans(pts, 3, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Each true cluster must map to exactly one found cluster.
	mapping := map[int]int{}
	for i, l := range labels {
		if prev, ok := mapping[l]; ok && prev != res.Assign[i] {
			t.Fatalf("true cluster %d split across k-means clusters", l)
		}
		mapping[l] = res.Assign[i]
	}
	if len(mapping) != 3 {
		t.Fatalf("found %d clusters, want 3", len(mapping))
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	pts, _ := threeBlobs(150, r)
	var prev float64 = math.Inf(1)
	for k := 1; k <= 4; k++ {
		res, err := KMeans(pts, k, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Fatalf("inertia increased from k=%d to k=%d (%v → %v)", k-1, k, prev, res.Inertia)
		}
		prev = res.Inertia
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pts, _ := threeBlobs(90, r)
	a, _ := KMeans(pts, 3, 50, 42)
	b, _ := KMeans(pts, 3, 50, 42)
	if a.Inertia != b.Inertia {
		t.Fatal("k-means not deterministic for fixed seed")
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 0, 10, 1); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := KMeans([][]float64{{1}}, 2, 10, 1); err == nil {
		t.Fatal("fewer points than clusters must fail")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 10, 1); err == nil {
		t.Fatal("ragged points must fail")
	}
}

func TestKMeansDegenerateIdenticalPoints(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(pts, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %v, want 0", res.Inertia)
	}
}

func TestKMeansAssignmentsConsistentWithCentroids(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	pts, _ := threeBlobs(120, r)
	res, err := KMeans(pts, 3, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		best, bestD := 0, math.Inf(1)
		for c, cent := range res.Centroids {
			if d := sqDist(p, cent); d < bestD {
				best, bestD = c, d
			}
		}
		if best != res.Assign[i] {
			t.Fatalf("point %d assigned to %d but %d is closer", i, res.Assign[i], best)
		}
	}
}
