package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeansResult is the output of a k-means run.
type KMeansResult struct {
	// Centroids are the k cluster centers.
	Centroids [][]float64
	// Assign maps each input point to its centroid index.
	Assign []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is the number of Lloyd iterations executed.
	Iterations int
}

// KMeans clusters points into k groups with Lloyd's algorithm seeded
// by k-means++ (deterministic for a given seed). maxIter ≤ 0 selects
// 100. It returns an error for k < 1 or fewer points than clusters.
func KMeans(points [][]float64, k int, maxIter int, seed int64) (*KMeansResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("ml: k must be ≥ 1, got %d", k)
	}
	if len(points) < k {
		return nil, fmt.Errorf("ml: %d points cannot form %d clusters", len(points), k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("ml: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	//lint:ignore DTT002 deterministic for the caller-provided seed: a fresh rand.Source seeded per call, never ambient global state; query call sites pass a constant seed
	r := rand.New(rand.NewSource(seed))
	centroids := seedPlusPlus(points, k, r)
	assign := make([]int, len(points))
	res := &KMeansResult{}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := sqDist(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		res.Iterations = iter + 1
		// Recompute centroids.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				centroids[c] = append([]float64(nil), points[r.Intn(len(points))]...)
				continue
			}
			for d := range sums[c] {
				sums[c][d] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
		if !changed && iter > 0 {
			break
		}
	}
	res.Centroids = centroids
	res.Assign = assign
	for i, p := range points {
		res.Inertia += sqDist(p, centroids[assign[i]])
	}
	return res, nil
}

// seedPlusPlus picks k initial centers with the k-means++ rule:
// each next center is drawn with probability proportional to its
// squared distance from the nearest chosen center.
func seedPlusPlus(points [][]float64, k int, r *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[r.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centers; duplicate one.
			centroids = append(centroids, append([]float64(nil), points[r.Intn(len(points))]...))
			continue
		}
		target := r.Float64() * total
		acc := 0.0
		pick := len(points) - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
