// Package ml implements the machine-learning substrate the paper's
// evaluation depends on: a REPTree-style regression tree (the WEKA
// learner the Smart Homes case study uses for power prediction) and
// k-means clustering (Query VI's periodic per-location user
// clustering). Both are written from scratch on the standard library
// and are deterministic given a seed.
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Dataset is a supervised regression dataset: X[i] is the i-th
// feature vector and Y[i] its numeric label.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of instances.
func (d Dataset) Len() int { return len(d.Y) }

// Append adds one instance.
func (d *Dataset) Append(x []float64, y float64) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// split partitions indices into train and prune sets.
func (d Dataset) split(pruneFrac float64, r *rand.Rand) (train, prune []int) {
	idx := r.Perm(d.Len())
	cut := int(float64(d.Len()) * (1 - pruneFrac))
	return idx[:cut], idx[cut:]
}

// REPTreeConfig are the learner's hyperparameters, mirroring WEKA's
// REPTree defaults where sensible.
type REPTreeConfig struct {
	// MaxDepth limits tree depth; ≤0 means unlimited.
	MaxDepth int
	// MinInstances is the minimum number of training instances per
	// leaf (WEKA default 2).
	MinInstances int
	// MinVarianceProp stops splitting when a node's label variance
	// falls below this proportion of the root variance (WEKA: 1e-3).
	MinVarianceProp float64
	// PruneFraction is the share of data held out for reduced-error
	// pruning; 0 disables pruning.
	PruneFraction float64
	// Seed drives the train/prune shuffle.
	Seed int64
}

// DefaultREPTreeConfig returns WEKA-like defaults with pruning on.
func DefaultREPTreeConfig() REPTreeConfig {
	return REPTreeConfig{MaxDepth: -1, MinInstances: 2, MinVarianceProp: 1e-3, PruneFraction: 0.25, Seed: 1}
}

// treeNode is one node of the regression tree.
type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	value       float64 // leaf prediction (mean of training labels)
	count       int
}

func (n *treeNode) isLeaf() bool { return n.left == nil }

// REPTree is a trained reduced-error-pruning regression tree.
type REPTree struct {
	root     *treeNode
	features int
}

// TrainREPTree fits a regression tree with variance-minimizing binary
// splits and (optionally) prunes it bottom-up against a held-out set.
func TrainREPTree(data Dataset, cfg REPTreeConfig) (*REPTree, error) {
	if data.Len() == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	nf := len(data.X[0])
	for i, x := range data.X {
		if len(x) != nf {
			return nil, fmt.Errorf("ml: instance %d has %d features, want %d", i, len(x), nf)
		}
	}
	if cfg.MinInstances < 1 {
		cfg.MinInstances = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	train := make([]int, data.Len())
	for i := range train {
		train[i] = i
	}
	var prune []int
	if cfg.PruneFraction > 0 && data.Len() >= 8 {
		train, prune = data.split(cfg.PruneFraction, r)
	}
	rootVar := variance(data, train)
	b := &builder{data: data, cfg: cfg, minVar: rootVar * cfg.MinVarianceProp}
	root := b.grow(train, 0)
	tree := &REPTree{root: root, features: nf}
	if len(prune) > 0 {
		tree.pruneNode(root, data, prune)
	}
	return tree, nil
}

type builder struct {
	data   Dataset
	cfg    REPTreeConfig
	minVar float64
}

func mean(d Dataset, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += d.Y[i]
	}
	return s / float64(len(idx))
}

func variance(d Dataset, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	m := mean(d, idx)
	s := 0.0
	for _, i := range idx {
		dv := d.Y[i] - m
		s += dv * dv
	}
	return s / float64(len(idx))
}

func (b *builder) grow(idx []int, depth int) *treeNode {
	node := &treeNode{value: mean(b.data, idx), count: len(idx)}
	if len(idx) < 2*b.cfg.MinInstances ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) ||
		variance(b.data, idx) <= b.minVar {
		return node
	}
	feature, threshold, ok := b.bestSplit(idx)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if b.data.X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.cfg.MinInstances || len(right) < b.cfg.MinInstances {
		return node
	}
	node.feature = feature
	node.threshold = threshold
	node.left = b.grow(left, depth+1)
	node.right = b.grow(right, depth+1)
	return node
}

// bestSplit finds the (feature, threshold) minimizing the weighted
// child SSE, scanning sorted feature values with running sums.
func (b *builder) bestSplit(idx []int) (feature int, threshold float64, ok bool) {
	bestSSE := math.Inf(1)
	nf := len(b.data.X[idx[0]])
	type fv struct{ x, y float64 }
	vals := make([]fv, len(idx))
	for f := 0; f < nf; f++ {
		for k, i := range idx {
			vals[k] = fv{b.data.X[i][f], b.data.Y[i]}
		}
		sort.Slice(vals, func(a, c int) bool { return vals[a].x < vals[c].x })
		var sumL, sqL float64
		var sumR, sqR float64
		for _, v := range vals {
			sumR += v.y
			sqR += v.y * v.y
		}
		n := float64(len(vals))
		nL := 0.0
		for k := 0; k+1 < len(vals); k++ {
			y := vals[k].y
			sumL += y
			sqL += y * y
			sumR -= y
			sqR -= y * y
			nL++
			if vals[k].x == vals[k+1].x {
				continue // not a valid cut point
			}
			nR := n - nL
			sse := (sqL - sumL*sumL/nL) + (sqR - sumR*sumR/nR)
			if sse < bestSSE-1e-12 {
				bestSSE = sse
				feature = f
				threshold = (vals[k].x + vals[k+1].x) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// pruneNode performs reduced-error pruning: replace a subtree by a
// leaf whenever the leaf's error on the prune set is no worse.
// Returns the subtree's prune-set SSE after (possible) pruning.
func (t *REPTree) pruneNode(n *treeNode, data Dataset, idx []int) float64 {
	leafSSE := 0.0
	for _, i := range idx {
		d := data.Y[i] - n.value
		leafSSE += d * d
	}
	if n.isLeaf() {
		return leafSSE
	}
	var left, right []int
	for _, i := range idx {
		if data.X[i][n.feature] <= n.threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	subSSE := t.pruneNode(n.left, data, left) + t.pruneNode(n.right, data, right)
	if leafSSE <= subSSE {
		n.left, n.right = nil, nil
		return leafSSE
	}
	return subSSE
}

// Predict returns the tree's estimate for the feature vector.
func (t *REPTree) Predict(x []float64) float64 {
	n := t.root
	for !n.isLeaf() {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the tree's depth (a single leaf has depth 0).
func (t *REPTree) Depth() int { return depth(t.root) }

func depth(n *treeNode) int {
	if n.isLeaf() {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaves.
func (t *REPTree) Leaves() int { return leaves(t.root) }

func leaves(n *treeNode) int {
	if n.isLeaf() {
		return 1
	}
	return leaves(n.left) + leaves(n.right)
}

// MSE evaluates the tree's mean squared error on a dataset.
func (t *REPTree) MSE(data Dataset) float64 {
	if data.Len() == 0 {
		return 0
	}
	s := 0.0
	for i := range data.Y {
		d := data.Y[i] - t.Predict(data.X[i])
		s += d * d
	}
	return s / float64(data.Len())
}
