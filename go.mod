module datatrace

go 1.24
