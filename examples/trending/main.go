// Trending topics: sliding-window aggregation with the section 8
// extension template.
//
// A synthetic social-media stream of (topic, mentions) events is
// aggregated per topic over a sliding 30-second window (markers every
// second) using the SlidingAggregate template — the specialized
// sliding-window operator the paper's future-work section calls for,
// implemented with an O(1)-amortized two-stacks algorithm. The window
// is deployed at parallelism 4 and the example prints the top topics
// of the final window, verifying the deployment against the
// sequential reference.
//
//	go run ./examples/trending
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"datatrace"
)

const windowBlocks = 30

func trendStream(seconds int) []datatrace.Event {
	topics := []string{"go", "streams", "types", "pldi", "storm", "traces", "monoids", "pomsets"}
	r := rand.New(rand.NewSource(7))
	var out []datatrace.Event
	for s := 0; s < seconds; s++ {
		// A topic "bursts" for 20 seconds at a time.
		hot := topics[(s/20)%len(topics)]
		for i := 0; i < 200; i++ {
			topic := topics[r.Intn(len(topics))]
			if r.Intn(3) == 0 {
				topic = hot
			}
			out = append(out, datatrace.Item(topic, 1))
		}
		out = append(out, datatrace.Mark(datatrace.Marker{Seq: int64(s), Timestamp: int64(s + 1)}))
	}
	return out
}

func main() {
	window := &datatrace.SlidingAggregate[string, int, int]{
		OpName:       "mentions(30s)",
		InT:          datatrace.U("Topic", "Int"),
		OutT:         datatrace.U("Topic", "Int"),
		WindowBlocks: windowBlocks,
		In:           func(_ string, n int) int { return n },
		ID:           func() int { return 0 },
		Combine:      func(x, y int) int { return x + y },
	}

	dag := datatrace.NewDAG()
	src := dag.Source("firehose", datatrace.U("Topic", "Int"))
	win := dag.Op(window, 4, src)
	dag.Sink("board", win)

	input := trendStream(90)
	ref, err := dag.Eval(map[string][]datatrace.Event{"firehose": input})
	if err != nil {
		log.Fatal(err)
	}
	top, err := datatrace.Compile(dag, map[string]datatrace.SourceSpec{
		"firehose": {Parallelism: 1, Factory: func(int) datatrace.Spout {
			return datatrace.SliceSpout(input)
		}},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := top.Run()
	if err != nil {
		log.Fatal(err)
	}
	if !datatrace.Equivalent(datatrace.U("Topic", "Int"), ref["board"], res.Sinks["board"]) {
		log.Fatal("deployment changed the trending board")
	}

	// Final window counts.
	final := map[string]int{}
	for _, e := range res.Sinks["board"] {
		if !e.IsMarker {
			final[e.Key.(string)] = e.Value.(int)
		}
	}
	type kv struct {
		topic string
		n     int
	}
	var ranked []kv
	for topic, n := range final {
		ranked = append(ranked, kv{topic, n})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].n > ranked[j].n })
	fmt.Println("trending in the last 30 seconds (parallel deployment ≡ spec):")
	for i, e := range ranked {
		if i == 5 {
			break
		}
		fmt.Printf("  %d. %-10s %5d mentions\n", i+1, e.topic, e.n)
	}
}
