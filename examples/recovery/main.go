// Recovery: marker-aligned checkpointing on the micro-batch backend.
//
// The IoT pipeline runs for a few batches, a checkpoint is taken at a
// marker boundary (a consistent cut: every operator has processed
// exactly the same prefix of blocks), the engine is discarded
// ("crash"), a fresh engine is restored from the checkpoint, and the
// run resumes. The concatenated output is verified trace-equivalent
// to an uninterrupted run — state recovery does not change the
// computation's semantics.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"datatrace/internal/iot"
	"datatrace/internal/microbatch"
	"datatrace/internal/stream"
)

func main() {
	cfg := iot.DefaultSensorConfig()
	cfg.Seconds = 80
	inputs := map[string][]stream.Event{"hub": iot.Stream(cfg)}
	blocks := cfg.Seconds / cfg.MarkerPeriod

	full, err := microbatch.RunDAG(iot.PipelineDAG(cfg, 2), inputs, nil)
	if err != nil {
		log.Fatal(err)
	}

	cut := blocks / 2
	e1, err := microbatch.New(iot.PipelineDAG(cfg, 2), nil)
	if err != nil {
		log.Fatal(err)
	}
	first, err := e1.RunBatches(inputs, 0, cut)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := e1.Checkpoint(cut)
	if err != nil {
		log.Fatal(err)
	}
	bytes := 0
	for _, parts := range cp.State {
		for _, b := range parts {
			bytes += len(b)
		}
	}
	fmt.Printf("processed %d/%d batches, checkpoint taken: %d operator partitions, %d bytes of state\n",
		cut, blocks, len(cp.State), bytes)

	// "Crash": e1 is abandoned. Restore a fresh engine and resume.
	e2, err := microbatch.Restore(iot.PipelineDAG(cfg, 2), cp, nil)
	if err != nil {
		log.Fatal(err)
	}
	rest, err := e2.RunBatches(inputs, cp.Batch, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored and resumed: %d more batches\n", rest.Batches)

	combined := append(append([]stream.Event(nil), first.Sinks["sink"]...), rest.Sinks["sink"]...)
	equal := stream.Equivalent(iot.SinkType(), combined, full.Sinks["sink"])
	fmt.Println("resumed output ≡ uninterrupted run:", equal)
	if !equal {
		log.Fatal("recovery changed the semantics")
	}
}
