// Recovery: marker-aligned checkpointing, on both execution backends.
//
// Part 1 (micro-batch): the IoT pipeline runs for a few batches, a
// checkpoint is taken at a marker boundary (a consistent cut: every
// operator has processed exactly the same prefix of blocks), the
// engine is discarded ("crash"), a fresh engine is restored from the
// checkpoint, and the run resumes.
//
// Part 2 (storm runtime): the same pipeline is compiled with
// marker-cut recovery enabled and a FaultPlan injects a panic into a
// mid-pipeline bolt instance partway through the stream. The executor
// restarts from its last completed marker cut, restores its snapshot,
// and replays the in-flight block.
//
// Both recovered outputs are verified trace-equivalent to an
// uninterrupted run — failure and recovery do not change the
// computation's semantics.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"

	"datatrace/internal/compile"
	"datatrace/internal/iot"
	"datatrace/internal/microbatch"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

func main() {
	cfg := iot.DefaultSensorConfig()
	cfg.Seconds = 80
	inputs := map[string][]stream.Event{"hub": iot.Stream(cfg)}
	blocks := cfg.Seconds / cfg.MarkerPeriod

	full, err := microbatch.RunDAG(iot.PipelineDAG(cfg, 2), inputs, nil)
	if err != nil {
		log.Fatal(err)
	}

	cut := blocks / 2
	e1, err := microbatch.New(iot.PipelineDAG(cfg, 2), nil)
	if err != nil {
		log.Fatal(err)
	}
	first, err := e1.RunBatches(inputs, 0, cut)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := e1.Checkpoint(cut)
	if err != nil {
		log.Fatal(err)
	}
	bytes := 0
	for _, parts := range cp.State {
		for _, b := range parts {
			bytes += len(b)
		}
	}
	fmt.Printf("processed %d/%d batches, checkpoint taken: %d operator partitions, %d bytes of state\n",
		cut, blocks, len(cp.State), bytes)

	// "Crash": e1 is abandoned. Restore a fresh engine and resume.
	e2, err := microbatch.Restore(iot.PipelineDAG(cfg, 2), cp, nil)
	if err != nil {
		log.Fatal(err)
	}
	rest, err := e2.RunBatches(inputs, cp.Batch, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored and resumed: %d more batches\n", rest.Batches)

	combined := append(append([]stream.Event(nil), first.Sinks["sink"]...), rest.Sinks["sink"]...)
	equal := stream.Equivalent(iot.SinkType(), combined, full.Sinks["sink"])
	fmt.Println("resumed output ≡ uninterrupted run:", equal)
	if !equal {
		log.Fatal("recovery changed the semantics")
	}

	// Part 2: the storm runtime recovers in place from an injected
	// crash. Compile the pipeline with recovery enabled, then crash a
	// mid-pipeline bolt instance at its 40th input event.
	events := inputs["hub"]
	build := func() (*storm.Topology, error) {
		return compile.Compile(iot.PipelineDAG(cfg, 2), map[string]compile.SourceSpec{
			"hub": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(events) }},
		}, &compile.Options{
			FuseSort: true,
			Recovery: &storm.RecoveryPolicy{Enabled: true, Logf: log.Printf},
		})
	}
	top, err := build()
	if err != nil {
		log.Fatal(err)
	}
	victim := ""
	for _, c := range top.Components() {
		if c.Kind == "bolt" {
			victim = c.Name
			break
		}
	}
	top.SetFaultPlan(storm.NewFaultPlan().CrashAt(victim, 0, 40))
	res, err := top.Run()
	if err != nil {
		log.Fatal(err)
	}
	restarts, replayed, dropped := res.Stats.Recovery()
	fmt.Printf("storm runtime: crashed %s[0] at event 40; %d restart(s), %d event(s) replayed, %d dropped\n",
		victim, restarts, replayed, dropped)

	equal = stream.Equivalent(iot.SinkType(), res.Sinks["sink"], full.Sinks["sink"])
	fmt.Println("recovered storm output ≡ uninterrupted run:", equal)
	if !equal {
		log.Fatal("storm recovery changed the semantics")
	}
}
