// Observability: executor-level latency histograms, backpressure
// gauges, marker-cut lag and sampled event spans, on both backends.
//
// A typed three-stage pipeline (scale → per-key sum) is compiled with
// the observability subsystem enabled and marker-cut recovery on. While
// the storm topology runs, a monitor goroutine polls
// Topology.LiveStats() — the collector is race-safe to read mid-run —
// and prints a live per-component table. After the run the final
// snapshot is rendered: per-component p50/p99 execute latency, queue
// latency, the high-water inbox depth (the backpressure gauge),
// marker-cut lag (cut start → snapshot committed) and a sampled span
// trace. The same DAG then runs on the micro-batch engine with
// observability on, whose analogs are per-partition batch backlog
// (queue gauge) and per-batch task duration (marker lag).
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"datatrace/internal/compile"
	"datatrace/internal/core"
	"datatrace/internal/metrics"
	"datatrace/internal/microbatch"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

const (
	blocks   = 150
	perBlock = 40
	keys     = 32
	par      = 2
)

// input is a keyed integer stream with one marker per block.
func input() []stream.Event {
	r := rand.New(rand.NewSource(11))
	out := make([]stream.Event, 0, blocks*(perBlock+1))
	for b := 0; b < blocks; b++ {
		for i := 0; i < perBlock; i++ {
			out = append(out, stream.Item(r.Intn(keys), r.Intn(1000)))
		}
		out = append(out, stream.Mark(stream.Marker{Seq: int64(b), Timestamp: int64(b)}))
	}
	return out
}

// pipeline is the typed DAG: scale every value, then sum per key at
// each marker. The scale stage sleeps ~20µs per item so the run lasts
// long enough to watch live.
func pipeline() *core.DAG {
	d := core.NewDAG()
	src := d.Source("src", stream.U("Int", "Int"))
	f := d.Op(&core.Stateless[int, int, int, int]{
		OpName: "scale", In: stream.U("Int", "Int"), Out: stream.U("Int", "Int"),
		OnItem: func(emit core.Emit[int, int], k, v int) {
			time.Sleep(20 * time.Microsecond)
			emit(k, v*2)
		},
	}, par, src)
	s := d.Op(&core.KeyedUnordered[int, int, int, int64, int64, int64]{
		OpName: "sum", InT: stream.U("Int", "Int"), OutT: stream.U("Int", "Long"),
		In:           func(_, v int) int64 { return int64(v) },
		ID:           func() int64 { return 0 },
		Combine:      func(x, y int64) int64 { return x + y },
		InitialState: func() int64 { return 0 },
		UpdateState:  func(old, agg int64) int64 { return old + agg },
		OnMarker: func(emit core.Emit[int, int64], st int64, k int, m stream.Marker) {
			emit(k, st)
		},
	}, par, f)
	d.Sink("out", s)
	return d
}

func main() {
	in := input()
	obs := metrics.DefaultObsConfig()

	top, err := compile.Compile(pipeline(), map[string]compile.SourceSpec{
		"src": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(in) }},
	}, &compile.Options{
		FuseSort:      true,
		Recovery:      &storm.RecoveryPolicy{Enabled: true},
		Observability: &obs,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Monitor: poll the live collector while the topology runs.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(30 * time.Millisecond)
		defer tick.Stop()
		for n := 1; ; n++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			s := top.LiveStats()
			if s == nil {
				continue // Run not started yet
			}
			snap := s.Snapshot()
			var executed int64
			for _, c := range snap.ByComponent() {
				executed += c.Executed
			}
			fmt.Printf("-- live poll %d: %d events executed --\n%s\n", n, executed, snap.ObsTable())
			if n >= 3 {
				return // a few polls are enough for the demo
			}
		}
	}()

	res, err := top.Run()
	close(stop)
	<-done
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== storm backend: final snapshot (wall %s) ==\n", res.Wall.Round(time.Millisecond))
	final := res.Stats.Snapshot()
	fmt.Println(final.ObsTable())
	fmt.Println("sampled span trace (most recent per executor ring):")
	fmt.Println(final.SpanTrace())

	// The same DAG on the micro-batch engine, observability on.
	mb, err := microbatch.RunDAG(pipeline(), map[string][]stream.Event{"src": in},
		&microbatch.Options{Obs: metrics.DefaultObsConfig()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== micro-batch backend (wall %s; marker lag = per-batch task duration) ==\n",
		mb.Wall.Round(time.Millisecond))
	fmt.Println(mb.Stats.Snapshot().ObsTable())

	equal := stream.Equivalent(stream.U("Int", "Long"), res.Sinks["out"], mb.Sinks["out"])
	fmt.Println("storm output ≡ micro-batch output:", equal)
}
