// Quickstart: the paper's Figure 2 program, written against the
// public datatrace API.
//
// A stream of (sensor id, reading) pairs with a marker every "second"
// flows through two typed stages: a stateless filter keeping even
// keys (deployed ×2) and a per-key sum emitted at every marker
// (deployed ×3). The DAG is type-checked, compiled to a topology, run
// on the concurrent runtime — and the output trace is compared with
// the sequential reference semantics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"datatrace"
)

func main() {
	// Input: 3 blocks of readings, markers at second boundaries.
	var input []datatrace.Event
	for s := 0; s < 3; s++ {
		for i := 0; i < 8; i++ {
			key := (s + i) % 5
			input = append(input, datatrace.Item(key, float64(10*s+i)))
		}
		input = append(input, datatrace.Mark(datatrace.Marker{Seq: int64(s), Timestamp: int64(s + 1)}))
	}

	// Processing node 1: filter out the odd keys (stateless).
	filterOp := &datatrace.Stateless[int, float64, int, float64]{
		OpName: "filterEven",
		In:     datatrace.U("Int", "Float"),
		Out:    datatrace.U("Int", "Float"),
		OnItem: func(emit datatrace.Emit[int, float64], key int, value float64) {
			if key%2 == 0 {
				emit(key, value)
			}
		},
	}

	// Processing node 2: sum per key per time unit (keyed, unordered:
	// the per-block values are folded through a commutative monoid).
	sumOp := &datatrace.KeyedUnordered[int, float64, int, float64, float64, float64]{
		OpName:       "sumPerKey",
		InT:          datatrace.U("Int", "Float"),
		OutT:         datatrace.U("Int", "Float"),
		In:           func(_ int, v float64) float64 { return v },
		ID:           func() float64 { return 0 },
		Combine:      func(x, y float64) float64 { return x + y },
		InitialState: func() float64 { return 0 },
		UpdateState:  func(_, agg float64) float64 { return agg },
		OnMarker: func(emit datatrace.Emit[int, float64], state float64, key int, m datatrace.Marker) {
			emit(key, state)
		},
	}

	// Setting up the transduction DAG (parallelism hints 2 and 3).
	dag := datatrace.NewDAG()
	source := dag.Source("source", datatrace.U("Int", "Float"))
	filter := dag.Op(filterOp, 2, source)
	sum := dag.Op(sumOp, 3, filter)
	dag.Sink("printer", sum)

	// Reference semantics: the DAG's denotation on the input trace.
	ref, err := dag.Eval(map[string][]datatrace.Event{"source": input})
	if err != nil {
		log.Fatal(err)
	}

	// Check type consistency, compile for the runtime, and run it —
	// 1 spout, 2 filter executors, 3 sum executors, concurrently.
	top, err := datatrace.Compile(dag, map[string]datatrace.SourceSpec{
		"source": {Parallelism: 1, Factory: func(int) datatrace.Spout {
			return datatrace.SliceSpout(input)
		}},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := top.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("input:            ", datatrace.Render(input))
	fmt.Println("reference output: ", datatrace.Render(ref["printer"]))
	fmt.Println("deployed output:  ", datatrace.Render(res.Sinks["printer"]))
	equal := datatrace.Equivalent(datatrace.U("Int", "Float"), ref["printer"], res.Sinks["printer"])
	fmt.Println("equivalent as data traces:", equal)
	if !equal {
		log.Fatal("deployment changed the semantics — this should be impossible")
	}
}
