// Yahoo Streaming Benchmark: the paper's Figure 3 pipeline (Query IV)
// in both variants.
//
// The query counts, per advertising campaign, the view events of the
// last 10 seconds, updated every second. It runs (1) as a typed
// transduction DAG compiled onto the runtime and (2) as a handcrafted
// topology with manual marker synchronization, verifies both against
// the sequential reference semantics, and prints a sample of the
// final window counts plus the per-component execution stats.
//
//	go run ./examples/yahoo
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"datatrace/internal/queries"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

func main() {
	cfg := workload.DefaultYahooConfig()
	cfg.EventsPerSecond = 2000
	cfg.Seconds = 15

	def, err := queries.ByName("IV")
	if err != nil {
		log.Fatal(err)
	}

	refEnv, err := queries.NewEnv(cfg, 2*time.Microsecond)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := def.Reference(refEnv)
	if err != nil {
		log.Fatal(err)
	}

	for _, variant := range []queries.Variant{queries.Generated, queries.Handcrafted} {
		env, err := queries.NewEnv(cfg, 2*time.Microsecond)
		if err != nil {
			log.Fatal(err)
		}
		res, err := queries.Run(env, queries.Spec{
			Query: "IV", Variant: variant, Par: 4, SourcePar: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		equal := stream.Equivalent(def.SinkType(env), res.Sinks["sink"], ref["sink"])
		items := int64(cfg.EventsPerSecond * cfg.Seconds)
		fmt.Printf("== %s: wall %v, %.0f tuples/s wall, %.0f tuples/s on a simulated 8-worker cluster, ≡ reference: %v\n",
			variant, res.Wall.Round(time.Millisecond),
			float64(items)/res.Wall.Seconds(),
			res.Stats.Throughput(items, 8), equal)
		if !equal {
			log.Fatal("variant output differs from the specification")
		}
	}

	// Final 10-second window counts per campaign (from the reference).
	counts := map[int64]int64{}
	for _, e := range ref["sink"] {
		if !e.IsMarker {
			counts[e.Key.(int64)] = e.Value.(int64)
		}
	}
	cids := make([]int64, 0, len(counts))
	for cid := range counts {
		cids = append(cids, cid)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	fmt.Println("\nviews in the final 10-second window (first 10 campaigns):")
	for i, cid := range cids {
		if i == 10 {
			break
		}
		fmt.Printf("  campaign %3d: %d views\n", cid, counts[cid])
	}
}
