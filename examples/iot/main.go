// IoT time-series interpolation: the paper's Example 4.1 / Figure 1.
//
// Temperature sensors report through a hub that guarantees only
// watermark markers every 10 seconds. The typed pipeline
//
//	HUB → JFM → SORT → LI → MaxOfAvg → SINK
//
// deserializes and filters the measurements (JFM), restores per-sensor
// timestamp order between markers (SORT), fills in missing data points
// by linear interpolation (LI), and tracks the maximum per-block
// average temperature per sensor (MaxOfAvg) — the three operators of
// the paper's Table 2. The example runs the pipeline sequentially and
// at parallelism 3, and shows the outputs are the same data trace.
//
//	go run ./examples/iot
package main

import (
	"fmt"
	"log"

	"datatrace/internal/iot"
	"datatrace/internal/stream"
)

func main() {
	cfg := iot.DefaultSensorConfig()
	cfg.Sensors = 6
	cfg.Seconds = 40

	fmt.Print(iot.PipelineDAG(cfg, 3).Dot())

	ref, err := iot.Reference(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := iot.RunTyped(cfg, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmax-of-average temperature per window sensor (last block):")
	last := map[int]float64{}
	for _, e := range res.Sinks["sink"] {
		if !e.IsMarker {
			last[e.Key.(int)] = e.Value.(iot.V).Scalar
		}
	}
	for id := 0; id < cfg.Sensors; id++ {
		if v, ok := last[id]; ok {
			fmt.Printf("  sensor %d: %.2f °C\n", id, v)
		}
	}

	equal := stream.Equivalent(iot.SinkType(), ref["sink"], res.Sinks["sink"])
	fmt.Println("\nparallel deployment ≡ specification:", equal)
	if !equal {
		log.Fatal("semantics not preserved")
	}
}
