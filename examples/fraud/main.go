// Fraud detection with the fluent DSL.
//
// A stream of card transactions is analyzed with a four-stage typed
// pipeline built through the dsl package: parse (FlatMap), key by
// card (KeyBy), 60-second sliding spend totals (SlidingWindow, the §8
// extension template running the two-stacks algorithm), and an alert
// filter. The ordering discipline is enforced by Go's type system:
// the DSL simply has no combinator that feeds an unordered stream to
// an order-sensitive stage without an explicit SortBy.
//
//	go run ./examples/fraud
package main

import (
	"fmt"
	"log"
	"math/rand"

	"datatrace/internal/compile"
	"datatrace/internal/dsl"
	"datatrace/internal/storm"
	"datatrace/internal/stream"
)

// Txn is one card transaction.
type Txn struct {
	Card   int64
	Amount float64
	TS     int64
}

const (
	seconds   = 120
	window    = 60 // sliding window in marker periods (1s markers)
	threshold = 2500.0
)

// transactions generates the stream: honest cards spend modestly; two
// "hot" cards run up large totals in the second half.
func transactions() []stream.Event {
	r := rand.New(rand.NewSource(5))
	var out []stream.Event
	for s := 0; s < seconds; s++ {
		for i := 0; i < 40; i++ {
			card := int64(r.Intn(50))
			amount := 5 + r.Float64()*40
			if s > seconds/2 && (card == 7 || card == 13) {
				amount = 200 + r.Float64()*100 // fraud burst
			}
			out = append(out, stream.Item(stream.Unit{}, Txn{Card: card, Amount: amount, TS: int64(s)}))
		}
		out = append(out, stream.Mark(stream.Marker{Seq: int64(s), Timestamp: int64(s + 1)}))
	}
	return out
}

func main() {
	b := dsl.NewBuilder()
	src := dsl.Source[stream.Unit, Txn](b, "gateway")
	byCard := dsl.KeyBy(src, "byCard", 2, func(_ stream.Unit, t Txn) int64 { return t.Card })
	spend := dsl.SlidingWindow(byCard, "spend60s", 4, window,
		dsl.Monoid[float64]{ID: func() float64 { return 0 }, Combine: func(x, y float64) float64 { return x + y }},
		func(_ int64, t Txn) float64 { return t.Amount })
	alerts := dsl.Filter(spend, "alert", 2, func(_ int64, total float64) bool {
		return total > threshold
	})
	dsl.SinkOf(alerts, "alerts")

	dag, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	input := transactions()
	top, err := compile.Compile(dag, map[string]compile.SourceSpec{
		"gateway": {Parallelism: 1, Factory: func(int) storm.Spout { return storm.SliceSpout(input) }},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := top.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Verify the concurrent run against the denotation, then report.
	ref, err := dag.Eval(map[string][]stream.Event{"gateway": input})
	if err != nil {
		log.Fatal(err)
	}
	if err := dag.EquivalentOutputs(ref, res.Sinks); err != nil {
		log.Fatal(err)
	}

	flagged := map[int64]float64{}
	for _, e := range res.Sinks["alerts"] {
		if !e.IsMarker {
			card := e.Key.(int64)
			if v := e.Value.(float64); v > flagged[card] {
				flagged[card] = v
			}
		}
	}
	fmt.Printf("cards flagged (60s spend > %.0f), deployment ≡ spec: true\n", threshold)
	for card, peak := range flagged {
		fmt.Printf("  card %2d: peak 60s spend %8.2f\n", card, peak)
	}
	if len(flagged) != 2 {
		log.Fatalf("expected exactly the 2 hot cards, flagged %d", len(flagged))
	}
}
