// Smart Homes power prediction: the paper's Figure 5 case study.
//
// Smart plugs across several buildings report load measurements with
// gaps, duplicates and disorder between watermarks. The seven-stage
// typed pipeline (JFM → SORT → LI → Map → SORT → AVG → Predict)
// cleans the stream and predicts each device type's average power
// over the next 10 minutes with a REPTree regression model. The
// example deploys the pipeline at parallelism 4 with per-building
// sources, verifies semantics preservation, and scores the
// predictions against the generator's ground truth.
//
//	go run ./examples/smarthome
package main

import (
	"fmt"
	"log"
	"time"

	"datatrace/internal/smarthome"
	"datatrace/internal/stream"
	"datatrace/internal/workload"
)

func main() {
	cfg := workload.DefaultSmartHomeConfig()
	cfg.Seconds = 200

	env, err := smarthome.NewEnv(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(smarthome.PipelineDAG(env, 4).Dot())

	ref, err := smarthome.Reference(env)
	if err != nil {
		log.Fatal(err)
	}
	res, err := smarthome.Run(env, 4, cfg.Buildings)
	if err != nil {
		log.Fatal(err)
	}
	equal := stream.Equivalent(smarthome.SinkType(), res.Sinks["sink"], ref["sink"])
	fmt.Println("\nparallel deployment ≡ specification:", equal)
	if !equal {
		log.Fatal("semantics not preserved")
	}

	mape, n, err := smarthome.PredictionError(env, res.Sinks["sink"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictions emitted: %d, mean absolute percentage error vs ground truth: %.1f%%\n",
		n, 100*mape)

	// Last prediction per device type.
	last := map[string]smarthome.VT{}
	for _, e := range res.Sinks["sink"] {
		if !e.IsMarker {
			last[e.Key.(string)] = e.Value.(smarthome.VT)
		}
	}
	fmt.Println("\nfinal 10-minute average power predictions:")
	for _, dt := range workload.DeviceTypes {
		if v, ok := last[dt]; ok {
			fmt.Printf("  %-7s %7.1f W (at ts %d)\n", dt, v.Value, v.TS)
		}
	}
	fmt.Printf("\nrun: wall %v, %d source tuples\n",
		res.Wall.Round(time.Millisecond), len(env.Gen.Events()))
}
