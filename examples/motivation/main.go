// Motivation: the paper's section 2 experiment.
//
// A sensor pipeline Map → LI → MaxOfAvg is data-parallelized two ways:
//
//  1. naively, replicating Map behind a raw shuffle grouping the way
//     a grouping-oblivious deployment does — the interpolation stage
//     receives an arbitrary interleaving and the output changes;
//
//  2. through the typed framework, which (a) statically rejects the
//     pipeline without a SORT (the U(ID,V) channel cannot feed the
//     order-requiring LI) and (b) deploys the corrected pipeline with
//     key-hash routing and marker alignment, preserving the
//     semantics at every parallelism.
//
//     go run ./examples/motivation
package main

import (
	"fmt"
	"log"

	"datatrace/internal/bench"
	"datatrace/internal/iot"
)

func main() {
	res, err := bench.Section2(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("section 2 experiment (Map ×2 → LI → MaxOfAvg):")
	fmt.Printf("  naive shuffle deployment ≡ specification: %v\n", res.NaiveEquivalent)
	fmt.Printf("  typed deployment ≡ specification:         %v\n", res.TypedEquivalent)
	fmt.Printf("  type checker rejects the sort-free DAG:   %v\n", res.TypeCheckRejectsNaive)

	fmt.Println("\nwhat the type checker says about the naive pipeline:")
	if err := iot.IllTypedDAG(iot.DefaultSensorConfig(), 2).Check(); err != nil {
		fmt.Printf("  %v\n", err)
	}

	if res.NaiveEquivalent || !res.TypedEquivalent || !res.TypeCheckRejectsNaive {
		log.Fatal("unexpected outcome — the motivation experiment should be clear-cut")
	}
	fmt.Println("\nconclusion: the naive deployment silently changes the computation;")
	fmt.Println("the typed one either rejects it at compile time or preserves it exactly.")
}
