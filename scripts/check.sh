#!/usr/bin/env bash
# check.sh — the repo's CI gate, runnable locally.
#
#   scripts/check.sh            # vet + build + race tests + fuzz smokes
#   FUZZTIME=30s scripts/check.sh   # longer fuzz smokes
#
# Each fuzz target runs for a short budget on top of its checked-in
# seed corpus; a found counterexample is written to the package's
# testdata/fuzz directory by the Go tooling and fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-5s}"

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== dttlint (streaming determinism analyzer, self-check) =="
# The analyzer's own determinism contract, enforced on the repository
# that defines it: any DTT00N finding (or analysis failure) fails the
# gate before the test steps run — including the PR 10 interprocedural
# rules (DTT008 commutativity, DTT009 batch-alias escape, DTT010
# marker/flush typestate). -tests holds test bolts to the same
# standard.
go run ./cmd/dttlint ./...
go run ./cmd/dttlint -tests ./...

echo "== dttlint -waivers (suppression-debt audit) =="
# Every //lint:ignore directive in the module must name a known rule
# and carry a reason; a reasonless or malformed waiver fails the gate.
go run ./cmd/dttlint -waivers ./...

echo "== go test -race =="
go test -race ./...

echo "== conformance suite (queries I-VI, permuted inputs, -race) =="
go test -race -run 'TestConformanceDifferentialQueries' -count 1 ./internal/queries/

echo "== transport equivalence (queries I-VI, batch sweep vs batch-1, -race) =="
go test -race -run 'TestTransportEquivalenceDifferential' -count 1 ./internal/queries/

echo "== optimization-pass equivalence (queries I-VI, passes on/off, -race) =="
go test -race -run 'TestOptimizationEquivalenceDifferential' -count 1 ./internal/queries/

echo "== rescale equivalence (queries I-VI, live rescales at marker cuts, -race) =="
# Queries I-VI with mid-stream parallelism changes (scale-out,
# scale-in, out-then-in) at scripted marker cuts, batch sizes 1 and
# 64: sink traces and per-component executed counts must match a
# fixed-parallelism oracle exactly.
go test -race -run 'TestRescaleEquivalenceDifferential' -count 1 ./internal/queries/

echo "== columnar equivalence + chaos (typed batches vs boxed oracle, -race) =="
# The columnar hot path against the boxed transport as its own oracle:
# queries I-VI differentially at par x batch sweeps, the Query IV plan
# assertion (typed edges actually selected — no vacuous pass), live
# rescales at marker cuts on columnar edges, and a worker-kill chaos
# run over the networked runtime with columnar frames.
go test -race -run 'TestColumnarEquivalenceDifferential|TestColumnarPlanSelectsTypedEdges|TestColumnarRescaleAtCut|TestColumnarChaosWorkerKill' -count 1 ./internal/queries/

echo "== networked equivalence + chaos (multi-process localhost TCP, -race) =="
# Real worker processes (re-execs of the race-instrumented test
# binary) exchanging frames over localhost TCP: queries I-VI against
# the in-process oracle, a SIGKILL-mid-epoch recovery check, a
# rescale-at-committed-cut check (revised placement table spliced onto
# the committed prefix), and the composed kill-during-rescale chaos
# run. Skips itself with a clear reason where sandboxing forbids
# sockets.
go test -race -run 'TestNetworkedEquivalenceDifferential|TestChaosWorkerKillRecovery|TestNetworkedRescaleAtCommittedCut|TestChaosWorkerKillDuringRescale' -count 1 ./internal/queries/

echo "== transport benchmark gate (batched must beat batch-1) =="
# Interleaved paired runs of generated Query IV with the default batched
# transport vs BatchSize 1 (the seed's one-send-per-event transport);
# keep each side's best ns/op and fail if batching doesn't win. The
# batched transport's whole point is throughput — a regression to parity
# with the unbatched path is a bug even while every equivalence test
# stays green.
gate="$(
    for i in 1 2 3; do
        go test -run xxx -bench 'BenchmarkQueryIVGenerated$' -benchtime 3x .
        go test -run xxx -bench 'BenchmarkQueryIVGeneratedBatch1$' -benchtime 3x .
    done | awk '
        /^BenchmarkQueryIVGeneratedBatch1/ { v = $3 + 0; if (!b1 || v < b1) b1 = v; next }
        /^BenchmarkQueryIVGenerated/       { v = $3 + 0; if (!bb || v < bb) bb = v }
        END {
            if (!bb || !b1) { print "MISSING"; exit }
            printf "batched %.0f ns/op  batch-1 %.0f ns/op  ratio %.2f\n", bb, b1, b1 / bb
            print (bb < b1 ? "PASS" : "FAIL")
        }'
)"
echo "$gate"
case "$gate" in
    *PASS) ;;
    *) echo "transport benchmark gate failed: batched transport is not faster than batch-1" >&2; exit 1 ;;
esac

echo "== fusion benchmark gate (alloc-ratio floor + dense timing guard) =="
# The gate exists because the fusion speedup had silently decayed
# toward parity across PRs 5-7 while every equivalence test stayed
# green (PR 9's closure-chained single-loop fusion came out of
# investigating that). Gating the decay on wall clock alone does not
# work here: the columnar transport sped the *unfused* baseline up
# ~4x, leaving a true dense-point fusion margin of ~5-15%, and
# shared-host noise of the same magnitude swings individual
# interleaved pair ratios from 0.94 to 1.18. So the gate has two
# parts:
#   1. Deterministic floor — on the workload-paced generated Query IV
#      pair, allocs/op reproduces run-to-run to ~0.5%, and chain
#      fusion's structural effect (no intermediate edge between fused
#      stages) is an unfused/fused allocs/op ratio of ~1.45x. If the
#      pass silently stops applying, the ratio collapses to 1.00;
#      FUSION_ALLOC_FLOOR (default 1.25) fails long before that.
#   2. Timing guard — the median of interleaved dense-point pair
#      ratios must stay >= FUSION_FLOOR (default 0.90): fusion may be
#      within noise of parity, but must never make the dense point
#      materially slower. Raise it on a quiet machine to pin the
#      real margin; query_iv_fusion_speedup in BENCH_PR10.json tracks
#      the trend.
fgate="$(
    AFLOOR="${FUSION_ALLOC_FLOOR:-1.25}"
    TFLOOR="${FUSION_FLOOR:-0.90}"
    {
        for i in 1 2 3 4 5; do
            go test -run xxx -bench 'BenchmarkQueryIVGeneratedDense$' -benchtime 10x .
            go test -run xxx -bench 'BenchmarkQueryIVGeneratedDenseNoOpt$' -benchtime 10x .
        done
        go test -run xxx -bench 'BenchmarkQueryIVGenerated$' -benchmem -benchtime 3x .
        go test -run xxx -bench 'BenchmarkQueryIVGeneratedNoOpt$' -benchmem -benchtime 3x .
    } | awk -v afloor="$AFLOOR" -v tfloor="$TFLOOR" '
        function allocsField(  i) {
            for (i = 2; i < NF; i++) if ($(i + 1) == "allocs/op") return $i + 0
            return 0
        }
        /^BenchmarkQueryIVGeneratedDenseNoOpt/ { doff[++no] = $3 + 0; next }
        /^BenchmarkQueryIVGeneratedDense/      { don[++ni] = $3 + 0; next }
        /^BenchmarkQueryIVGeneratedNoOpt/      { aoff = allocsField(); next }
        /^BenchmarkQueryIVGenerated/           { aon = allocsField(); next }
        END {
            if (ni == 0 || no == 0 || ni != no || aon == 0 || aoff == 0) { print "MISSING"; exit }
            for (i = 1; i <= ni; i++) r[i] = doff[i] / don[i]
            # median of the per-pair ratios (insertion sort; ni is 5)
            for (i = 2; i <= ni; i++) {
                v = r[i]
                for (j = i - 1; j >= 1 && r[j] > v; j--) r[j + 1] = r[j]
                r[j + 1] = v
            }
            med = (ni % 2) ? r[(ni + 1) / 2] : (r[ni / 2] + r[ni / 2 + 1]) / 2
            ar = aoff / aon
            printf "allocs/op off/on %.2f (floor %.2f)  dense median speedup %.2f (guard %.2f)\n", ar, afloor, med, tfloor
            print (ar >= afloor + 0 && med >= tfloor + 0 ? "PASS" : "FAIL")
        }'
)"
echo "$fgate"
case "$fgate" in
    *PASS) ;;
    *) echo "fusion benchmark gate failed: alloc ratio below floor or dense point materially slower with passes on" >&2; exit 1 ;;
esac

echo "== benchmark snapshot + allocation gate (scripts/bench.sh vs BENCH_PR10.json) =="
# A fresh snapshot is written to a scratch file and compared against
# the committed BENCH_PR10.json: any benchmark whose allocs/op grew by
# more than 10% over the committed baseline fails the gate. For the
# workload-paced benchmarks allocs/op is exactly reproducible
# run-to-run (the Go allocator does not care about machine load), so
# unlike the ns/op gates this one tolerates no slack beyond real
# allocation growth. The throughput-paced Dense pair is excluded: its
# pool hit rates depend on flush timing, so its counts wobble tens of
# percent with scheduling. Refresh the baseline by running
# scripts/bench.sh and committing the result WITH the change that
# moved it.
snap="$(mktemp)"
trap 'rm -f "$snap"' EXIT
scripts/bench.sh "$snap"
agate="$(awk '
    FNR == 1 { file++ }
    match($0, /"Benchmark[^"]*"/) {
        name = substr($0, RSTART + 1, RLENGTH - 2)
        if (match($0, /"allocs_per_op": [0-9]+/)) {
            v = substr($0, RSTART + 17, RLENGTH - 17) + 0
            if (file == 1) base[name] = v; else cur[name] = v
        }
    }
    END {
        bad = 0
        for (name in base) {
            if (name ~ /Dense/) continue
            if (!(name in cur)) { printf "MISSING %s in fresh snapshot\n", name; bad = 1; continue }
            ratio = base[name] > 0 ? cur[name] / base[name] : 1
            printf "%s: allocs/op %d -> %d (x%.2f)\n", name, base[name], cur[name], ratio
            if (ratio > 1.10) bad = 1
        }
        print (bad ? "FAIL" : "PASS")
    }
' BENCH_PR10.json "$snap")"
echo "$agate"
case "$agate" in
    *PASS) ;;
    *) echo "allocation gate failed: allocs/op grew >10% over committed BENCH_PR10.json" >&2; exit 1 ;;
esac

echo "== fuzz smokes (${FUZZTIME} each) =="
go test -run xxx -fuzz 'FuzzNormalFormInvariants$' -fuzztime "$FUZZTIME" ./internal/trace/
go test -run xxx -fuzz 'FuzzTraceNormalForm$' -fuzztime "$FUZZTIME" ./internal/trace/
go test -run xxx -fuzz 'FuzzFoataAgreesWithNormalForm$' -fuzztime "$FUZZTIME" ./internal/trace/
go test -run xxx -fuzz 'FuzzSplitMergeIdentity$' -fuzztime "$FUZZTIME" ./internal/stream/
go test -run xxx -fuzz 'FuzzMergePreservesMarkers$' -fuzztime "$FUZZTIME" ./internal/stream/
go test -run xxx -fuzz 'FuzzSplitMergeLaws$' -fuzztime "$FUZZTIME" ./internal/core/
go test -run xxx -fuzz 'FuzzReshardKeyedState$' -fuzztime "$FUZZTIME" ./internal/core/
go test -run xxx -fuzz 'FuzzHistogramRecord$' -fuzztime "$FUZZTIME" ./internal/metrics/
go test -run xxx -fuzz 'FuzzBatchFlush$' -fuzztime "$FUZZTIME" ./internal/storm/
go test -run xxx -fuzz 'FuzzCombinerFlush$' -fuzztime "$FUZZTIME" ./internal/storm/
go test -run xxx -fuzz 'FuzzWireFrame$' -fuzztime "$FUZZTIME" ./internal/codec/

echo "== ok =="
