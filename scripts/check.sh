#!/usr/bin/env bash
# check.sh — the repo's CI gate, runnable locally.
#
#   scripts/check.sh            # vet + build + race tests + fuzz smokes
#   FUZZTIME=30s scripts/check.sh   # longer fuzz smokes
#
# Each fuzz target runs for a short budget on top of its checked-in
# seed corpus; a found counterexample is written to the package's
# testdata/fuzz directory by the Go tooling and fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-5s}"

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== conformance suite (queries I-VI, permuted inputs, -race) =="
go test -race -run 'TestConformanceDifferentialQueries' -count 1 ./internal/queries/

echo "== fuzz smokes (${FUZZTIME} each) =="
go test -run xxx -fuzz 'FuzzNormalFormInvariants$' -fuzztime "$FUZZTIME" ./internal/trace/
go test -run xxx -fuzz 'FuzzTraceNormalForm$' -fuzztime "$FUZZTIME" ./internal/trace/
go test -run xxx -fuzz 'FuzzFoataAgreesWithNormalForm$' -fuzztime "$FUZZTIME" ./internal/trace/
go test -run xxx -fuzz 'FuzzSplitMergeIdentity$' -fuzztime "$FUZZTIME" ./internal/stream/
go test -run xxx -fuzz 'FuzzMergePreservesMarkers$' -fuzztime "$FUZZTIME" ./internal/stream/
go test -run xxx -fuzz 'FuzzSplitMergeLaws$' -fuzztime "$FUZZTIME" ./internal/core/
go test -run xxx -fuzz 'FuzzHistogramRecord$' -fuzztime "$FUZZTIME" ./internal/metrics/

echo "== ok =="
