#!/usr/bin/env bash
# check.sh — the repo's CI gate, runnable locally.
#
#   scripts/check.sh            # vet + build + race tests + fuzz smokes
#   FUZZTIME=30s scripts/check.sh   # longer fuzz smokes
#
# Each fuzz target runs for a short budget on top of its checked-in
# seed corpus; a found counterexample is written to the package's
# testdata/fuzz directory by the Go tooling and fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-5s}"

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== dttlint (streaming determinism analyzer, self-check) =="
# The analyzer's own determinism contract, enforced on the repository
# that defines it: any DTT00N finding (or analysis failure) fails the
# gate before the test steps run. -tests holds test bolts to the same
# standard.
go run ./cmd/dttlint ./...
go run ./cmd/dttlint -tests ./...

echo "== go test -race =="
go test -race ./...

echo "== conformance suite (queries I-VI, permuted inputs, -race) =="
go test -race -run 'TestConformanceDifferentialQueries' -count 1 ./internal/queries/

echo "== transport equivalence (queries I-VI, batch sweep vs batch-1, -race) =="
go test -race -run 'TestTransportEquivalenceDifferential' -count 1 ./internal/queries/

echo "== optimization-pass equivalence (queries I-VI, passes on/off, -race) =="
go test -race -run 'TestOptimizationEquivalenceDifferential' -count 1 ./internal/queries/

echo "== rescale equivalence (queries I-VI, live rescales at marker cuts, -race) =="
# Queries I-VI with mid-stream parallelism changes (scale-out,
# scale-in, out-then-in) at scripted marker cuts, batch sizes 1 and
# 64: sink traces and per-component executed counts must match a
# fixed-parallelism oracle exactly.
go test -race -run 'TestRescaleEquivalenceDifferential' -count 1 ./internal/queries/

echo "== networked equivalence + chaos (multi-process localhost TCP, -race) =="
# Real worker processes (re-execs of the race-instrumented test
# binary) exchanging frames over localhost TCP: queries I-VI against
# the in-process oracle, a SIGKILL-mid-epoch recovery check, a
# rescale-at-committed-cut check (revised placement table spliced onto
# the committed prefix), and the composed kill-during-rescale chaos
# run. Skips itself with a clear reason where sandboxing forbids
# sockets.
go test -race -run 'TestNetworkedEquivalenceDifferential|TestChaosWorkerKillRecovery|TestNetworkedRescaleAtCommittedCut|TestChaosWorkerKillDuringRescale' -count 1 ./internal/queries/

echo "== transport benchmark gate (batched must beat batch-1) =="
# Interleaved paired runs of generated Query IV with the default batched
# transport vs BatchSize 1 (the seed's one-send-per-event transport);
# keep each side's best ns/op and fail if batching doesn't win. The
# batched transport's whole point is throughput — a regression to parity
# with the unbatched path is a bug even while every equivalence test
# stays green.
gate="$(
    for i in 1 2 3; do
        go test -run xxx -bench 'BenchmarkQueryIVGenerated$' -benchtime 3x .
        go test -run xxx -bench 'BenchmarkQueryIVGeneratedBatch1$' -benchtime 3x .
    done | awk '
        /^BenchmarkQueryIVGeneratedBatch1/ { v = $3 + 0; if (!b1 || v < b1) b1 = v; next }
        /^BenchmarkQueryIVGenerated/       { v = $3 + 0; if (!bb || v < bb) bb = v }
        END {
            if (!bb || !b1) { print "MISSING"; exit }
            printf "batched %.0f ns/op  batch-1 %.0f ns/op  ratio %.2f\n", bb, b1, b1 / bb
            print (bb < b1 ? "PASS" : "FAIL")
        }'
)"
echo "$gate"
case "$gate" in
    *PASS) ;;
    *) echo "transport benchmark gate failed: batched transport is not faster than batch-1" >&2; exit 1 ;;
esac

echo "== fusion benchmark gate (passes on must beat passes off) =="
# Interleaved paired runs of generated Query IV at the dense operating
# point (see bench_test.go) with the optimization passes on (the
# default: chain fusion + shuffle-side combiners) vs off (the seed's
# one-bolt-per-operator topology); keep each side's best ns/op and
# fail if the passes don't win. The passes' whole point is throughput
# — parity with the unoptimized plan is a bug even while every
# equivalence test stays green.
fgate="$(
    for i in 1 2 3; do
        go test -run xxx -bench 'BenchmarkQueryIVGeneratedDense$' -benchtime 3x .
        go test -run xxx -bench 'BenchmarkQueryIVGeneratedDenseNoOpt$' -benchtime 3x .
    done | awk '
        /^BenchmarkQueryIVGeneratedDenseNoOpt/ { v = $3 + 0; if (!off || v < off) off = v; next }
        /^BenchmarkQueryIVGeneratedDense/      { v = $3 + 0; if (!on || v < on) on = v }
        END {
            if (!on || !off) { print "MISSING"; exit }
            printf "passes-on %.0f ns/op  passes-off %.0f ns/op  speedup %.2f\n", on, off, off / on
            print (on < off ? "PASS" : "FAIL")
        }'
)"
echo "$fgate"
case "$fgate" in
    *PASS) ;;
    *) echo "fusion benchmark gate failed: optimization passes are not faster than passes-off" >&2; exit 1 ;;
esac

echo "== benchmark snapshot (scripts/bench.sh -> BENCH_PR7.json) =="
scripts/bench.sh

echo "== fuzz smokes (${FUZZTIME} each) =="
go test -run xxx -fuzz 'FuzzNormalFormInvariants$' -fuzztime "$FUZZTIME" ./internal/trace/
go test -run xxx -fuzz 'FuzzTraceNormalForm$' -fuzztime "$FUZZTIME" ./internal/trace/
go test -run xxx -fuzz 'FuzzFoataAgreesWithNormalForm$' -fuzztime "$FUZZTIME" ./internal/trace/
go test -run xxx -fuzz 'FuzzSplitMergeIdentity$' -fuzztime "$FUZZTIME" ./internal/stream/
go test -run xxx -fuzz 'FuzzMergePreservesMarkers$' -fuzztime "$FUZZTIME" ./internal/stream/
go test -run xxx -fuzz 'FuzzSplitMergeLaws$' -fuzztime "$FUZZTIME" ./internal/core/
go test -run xxx -fuzz 'FuzzReshardKeyedState$' -fuzztime "$FUZZTIME" ./internal/core/
go test -run xxx -fuzz 'FuzzHistogramRecord$' -fuzztime "$FUZZTIME" ./internal/metrics/
go test -run xxx -fuzz 'FuzzBatchFlush$' -fuzztime "$FUZZTIME" ./internal/storm/
go test -run xxx -fuzz 'FuzzCombinerFlush$' -fuzztime "$FUZZTIME" ./internal/storm/
go test -run xxx -fuzz 'FuzzWireFrame$' -fuzztime "$FUZZTIME" ./internal/codec/

echo "== ok =="
