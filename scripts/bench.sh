#!/usr/bin/env bash
# bench.sh — the PR's benchmark snapshot, runnable locally and from
# scripts/check.sh.
#
#   scripts/bench.sh                 # run + write BENCH_PR10.json
#   BENCH_REPS=5 scripts/bench.sh    # more interleaved repetitions
#
# Runs the generated Query I, IV and VI topology benchmarks (plus the
# passes-off Query IV baseline) with allocation accounting, keeps each
# benchmark's best ns/op over BENCH_REPS interleaved repetitions, and
# writes BENCH_PR10.json: ns/op, events/sec (the benches' tuples/s
# metric) and allocs/op per benchmark, plus the chain-fusion +
# combiner speedup on Query IV (passes on vs off) and the columnar
# hot path's allocation reduction on Query IV against the boxed
# baseline committed in BENCH_PR7.json.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_REPS="${BENCH_REPS:-3}"
OUT="${1:-BENCH_PR10.json}"

# The pre-columnar allocs/op on generated Query IV, read from the
# committed PR 7 snapshot so the reported reduction always divides the
# same baseline.
BASE_ALLOCS="$(awk -F'"allocs_per_op": ' '/"BenchmarkQueryIVGenerated":/ { sub(/[^0-9].*/, "", $2); print $2; exit }' BENCH_PR7.json)"

BENCHES=(
    BenchmarkQueryIGenerated
    BenchmarkQueryIVGenerated
    BenchmarkQueryIVGeneratedNoOpt
    BenchmarkQueryIVGeneratedDense
    BenchmarkQueryIVGeneratedDenseNoOpt
    BenchmarkQueryVIGenerated
)

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Interleave the benchmarks across repetitions so machine-load drift
# hits them all equally; the best (minimum-ns/op) line per benchmark
# is kept below.
for i in $(seq "$BENCH_REPS"); do
    for b in "${BENCHES[@]}"; do
        go test -run xxx -bench "${b}\$" -benchtime 3x -benchmem . | tee -a "$raw"
    done
done

awk -v out="$OUT" -v base_allocs="$BASE_ALLOCS" '
    /^Benchmark/ {
        # Benchmark lines carry unit-tagged fields; pick each metric by
        # scanning for its unit token so the column order does not matter.
        name = $1; sub(/-[0-9]+$/, "", name)
        ns = eps = al = ""
        for (i = 2; i < NF; i++) {
            if ($(i+1) == "ns/op") ns = $i
            if ($(i+1) == "tuples/s") eps = $i
            if ($(i+1) == "allocs/op") al = $i
        }
        if (ns == "") next
        if (!(name in best) || ns + 0 < best[name] + 0) {
            best[name] = ns; tps[name] = eps; allocs[name] = al
            if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
        }
    }
    END {
        printf "{\n" > out
        for (i = 1; i <= n; i++) {
            name = order[i]
            printf "  \"%s\": {\"ns_per_op\": %.0f, \"events_per_sec\": %.0f, \"allocs_per_op\": %.0f},\n", \
                name, best[name], tps[name], allocs[name] >> out
        }
        # The recorded speedup is the dense pair: the optimization
        # passes measured at their operating point (see bench_test.go).
        on = best["BenchmarkQueryIVGeneratedDense"] + 0
        off = best["BenchmarkQueryIVGeneratedDenseNoOpt"] + 0
        if (on > 0 && off > 0) sp = off / on; else sp = 0
        printf "  \"query_iv_fusion_speedup\": %.3f,\n", sp >> out
        # Allocation reduction of the columnar hot path: the boxed
        # PR 7 allocs/op on generated Query IV over the current run.
        cur = allocs["BenchmarkQueryIVGenerated"] + 0
        if (cur > 0 && base_allocs + 0 > 0) ar = base_allocs / cur; else ar = 0
        printf "  \"query_iv_alloc_reduction\": %.2f\n}\n", ar >> out
        if (n == 0) { print "bench.sh: no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    }
' "$raw"

echo "== bench snapshot ($OUT) =="
cat "$OUT"
